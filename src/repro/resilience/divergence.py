"""Divergence detection and checkpoint rollback for the search engine.

A bilevel search that goes non-finite at epoch 47 should not print an NaN
report after burning the whole budget — it should *roll back* to the last
good checkpoint and retry with a deterministic intervention.  The guard
implements the engine's recovery protocol:

* :meth:`DivergenceGuard.check` — called by ``SearchEngine`` after every
  epoch with the fresh :class:`~repro.core.results.EpochRecord`; returns a
  reason string when the train loss, total (bilevel) loss, or any
  supernet parameter has gone non-finite.
* :meth:`DivergenceGuard.recover` — restores the searcher from the latest
  *verified* checkpoint (corrupt files are skipped by
  ``find_latest_checkpoint``), scales both optimizers' learning rates
  down by ``lr_scale`` (the recorded intervention), and returns the epoch
  to resume from.  The engine truncates its history and replays from
  there — deterministically, because the checkpoint restores the RNG
  streams and the only delta is the smaller LR.
* A ``max_rollbacks`` budget: persistent divergence raises a typed
  :class:`~repro.resilience.errors.DivergenceError` carrying every
  intervention tried, instead of looping forever.

Interventions are plain dicts (epoch, reason, rollback target, LR factor
and resulting LRs) surfaced as ``SearchReport.interventions`` so a
recovered run *says so* in its artefact.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.obs import get_tracer
from repro.resilience.errors import DivergenceError
from repro.utils.log import get_logger

__all__ = ["DivergenceGuard"]

logger = get_logger("resilience")


class DivergenceGuard:
    """Rollback-and-retry recovery policy for ``SearchEngine``.

    ``searcher`` is the :class:`~repro.core.cosearch.EDDSearcher` whose
    state the checkpoints capture; ``directory`` holds the ``ckpt-epoch-*``
    files rolled back to.  Call :meth:`prepare` before the run so a
    baseline checkpoint exists even if divergence hits in epoch 0.
    ``callback`` is the run's :class:`~repro.core.checkpoint.
    CheckpointCallback` (if any): its internal history is rewound on
    rollback so post-recovery saves stay consistent.
    """

    def __init__(
        self,
        searcher,
        directory,
        *,
        callback=None,
        max_rollbacks: int = 2,
        lr_scale: float = 0.5,
        prefix: str = "ckpt",
        check_params: bool = True,
    ) -> None:
        if max_rollbacks < 0:
            raise ValueError(f"max_rollbacks must be >= 0, got {max_rollbacks}")
        if not 0.0 < lr_scale < 1.0:
            raise ValueError(f"lr_scale must be in (0, 1), got {lr_scale}")
        self.searcher = searcher
        self.directory = Path(directory)
        self.callback = callback
        self.max_rollbacks = max_rollbacks
        self.lr_scale = lr_scale
        self.prefix = prefix
        self.check_params = check_params
        #: Rollbacks performed so far.
        self.rollbacks = 0
        #: One dict per intervention, in order — mirrored into
        #: ``SearchReport.interventions``.
        self.interventions: list[dict] = []

    def prepare(self, *, start_epoch: int = 0, history: Sequence = ()) -> None:
        """Ensure a baseline checkpoint exists to roll back to.

        No-op when the directory already holds a verified checkpoint
        (e.g. a resumed run); otherwise saves the pristine pre-search
        state as epoch ``start_epoch``.
        """
        from repro.core import checkpoint as ckpt  # lazy: avoids import cycle

        self.directory.mkdir(parents=True, exist_ok=True)
        if ckpt.find_latest_checkpoint(self.directory, prefix=self.prefix) is not None:
            return
        path = ckpt.checkpoint_path(self.directory, start_epoch, prefix=self.prefix)
        ckpt.save_checkpoint(
            self.searcher, path, epoch=start_epoch, history=history
        )

    def check(self, record, arch_ran: bool = True) -> str | None:
        """Return a divergence reason for ``record``, or ``None`` if healthy.

        ``arch_ran`` distinguishes a genuinely non-finite bilevel loss
        from the benign NaN placeholder of warm-up epochs that skipped the
        arch phase.
        """
        if not math.isfinite(record.train_loss):
            return f"non-finite train loss ({record.train_loss})"
        if arch_ran and not math.isfinite(record.total_loss):
            return f"non-finite total loss ({record.total_loss})"
        if self.check_params:
            for name, param in self.searcher.supernet.named_parameters():
                if not np.all(np.isfinite(param.data)):
                    return f"non-finite values in parameter {name}"
        return None

    def recover(self, epoch: int, reason: str) -> int:
        """Roll back to the last good checkpoint; return the resume epoch.

        Raises :class:`DivergenceError` when the rollback budget is
        exhausted or no verified checkpoint survives to roll back to.
        """
        from repro.core import checkpoint as ckpt  # lazy: avoids import cycle

        self.rollbacks += 1
        if self.rollbacks > self.max_rollbacks:
            raise DivergenceError(
                reason,
                epoch=epoch,
                rollbacks=self.rollbacks - 1,
                interventions=self.interventions,
            )
        latest = ckpt.find_latest_checkpoint(self.directory, prefix=self.prefix)
        if latest is None:
            raise DivergenceError(
                f"{reason}; no verified checkpoint to roll back to",
                epoch=epoch,
                rollbacks=self.rollbacks - 1,
                interventions=self.interventions,
            )
        state = ckpt.restore_search_state(self.searcher, latest)
        self.searcher.weight_optimizer.lr *= self.lr_scale
        self.searcher.arch_optimizer.lr *= self.lr_scale
        intervention = {
            "epoch": epoch,
            "reason": reason,
            "rollback_to": state.epoch,
            "action": "lr_scale",
            "factor": self.lr_scale,
            "lr_weights": self.searcher.weight_optimizer.lr,
            "lr_arch": self.searcher.arch_optimizer.lr,
        }
        self.interventions.append(intervention)
        if self.callback is not None:
            self.callback.rollback(state)
        logger.warning(
            "divergence at epoch %d (%s): rolled back to epoch %d, "
            "LRs scaled by %g (rollback %d/%d)",
            epoch,
            reason,
            state.epoch,
            self.lr_scale,
            self.rollbacks,
            self.max_rollbacks,
        )
        tracer = get_tracer()
        if tracer.enabled:
            tracer.counter("search.rollbacks", float(self.rollbacks), cat="search")
        return state.epoch
