"""Typed failure taxonomy for the crash-safe search tier.

Resilience only works when every failure mode has a *name*: callers can
catch ``CorruptCheckpoint`` and fall back to an older epoch, catch
``DivergenceError`` and report a clean budget-exhausted result instead of
an NaN-poisoned one, and catch ``Preempted`` to translate a SIGTERM into a
checkpoint-then-exit with a distinct exit code.  Anonymous ``RuntimeError``
soup would force ``except Exception`` at every call site — the opposite of
fault tolerance.

This module is a leaf: it imports nothing from the rest of ``repro`` so
that ``core.checkpoint``, ``core.parallel`` and the CLI can all share the
same exception types without import cycles.
"""

from __future__ import annotations

__all__ = [
    "CorruptCheckpoint",
    "DivergenceError",
    "PoisonTask",
    "Preempted",
]


class CorruptCheckpoint(RuntimeError):
    """A checkpoint file failed structural or checksum verification.

    Raised by :func:`repro.core.checkpoint.load_checkpoint` (and
    :func:`~repro.core.checkpoint.verify_checkpoint`) when a ``.npz``
    checkpoint is truncated, unreadable, or its embedded content checksum
    does not match the stored arrays — the signature of a crash mid-write
    or on-disk corruption.  ``find_latest_checkpoint`` catches this and
    falls back to the previous good epoch.
    """

    def __init__(self, path: str, reason: str) -> None:
        super().__init__(f"corrupt checkpoint {path}: {reason}")
        #: Path of the offending checkpoint file.
        self.path = str(path)
        #: Human-readable verification failure.
        self.reason = reason


class DivergenceError(RuntimeError):
    """Search diverged and the rollback budget is exhausted.

    Raised by the divergence guard when non-finite losses/parameters keep
    recurring after ``max_rollbacks`` rollback-and-retry interventions.
    Carries the full intervention history so the caller can report *what
    was tried* instead of a bare NaN.
    """

    def __init__(
        self,
        reason: str,
        *,
        epoch: int,
        rollbacks: int,
        interventions: list[dict] | None = None,
    ) -> None:
        super().__init__(
            f"search diverged at epoch {epoch} ({reason}); "
            f"rollback budget exhausted after {rollbacks} rollback(s)"
        )
        #: Divergence reason from the detector (e.g. ``"non-finite train loss"``).
        self.reason = reason
        #: Epoch index at which the final divergence was detected.
        self.epoch = epoch
        #: Rollbacks attempted before giving up.
        self.rollbacks = rollbacks
        #: Interventions applied so far (same dicts as ``SearchReport.interventions``).
        self.interventions = list(interventions or [])


class PoisonTask(RuntimeError):
    """A parallel task kept failing and was quarantined.

    Raised by :class:`repro.core.parallel.ParallelEvaluator` once a single
    task has exhausted its retry budget (or hit ``quarantine_after``
    failures): the task is declared poison rather than allowed to wedge
    the whole map in a retry loop.  Carries the per-attempt failure
    reasons for the post-mortem.
    """

    def __init__(self, index: int, failures: list[str]) -> None:
        attempts = len(failures)
        super().__init__(
            f"task {index} quarantined after {attempts} failed attempt(s): "
            f"{failures[-1] if failures else 'unknown'}"
        )
        #: Position of the poison payload in the submitted batch.
        self.index = index
        #: One reason string per failed attempt, oldest first.
        self.failures = list(failures)


class Preempted(RuntimeError):
    """The process received SIGTERM/SIGINT and is exiting cooperatively.

    Raised at a safe point (an epoch boundary for ``repro search``, the
    wait loop for ``repro serve``) after a
    :class:`~repro.resilience.preemption.PreemptionGuard` recorded the
    signal.  ``checkpoint`` names the state saved on the way out, if any;
    the CLI maps this exception to
    :data:`~repro.resilience.preemption.PREEMPTION_EXIT_CODE`.
    """

    def __init__(
        self,
        signum: int,
        *,
        checkpoint: str | None = None,
        epoch: int | None = None,
    ) -> None:
        import signal as _signal

        try:
            name = _signal.Signals(signum).name
        except ValueError:  # pragma: no cover - unknown signal number
            name = str(signum)
        detail = f"preempted by {name}"
        if checkpoint is not None:
            detail += f"; checkpoint saved to {checkpoint}"
        super().__init__(detail)
        #: Raw signal number that triggered preemption.
        self.signum = signum
        #: Signal name (``"SIGTERM"``/``"SIGINT"``).
        self.signame = name
        #: Path of the checkpoint written before exiting, or ``None``.
        self.checkpoint = checkpoint
        #: Last completed epoch at preemption time, or ``None``.
        self.epoch = epoch
