"""Per-op profile reports: measured engine timings joined with analytic estimates.

``Engine.run(x, profile=True)`` accumulates wall-clock milliseconds per plan
op; :func:`profile_report` turns that table into a JSON-serialisable payload
and — when a hardware target is named — joins each row against the analytic
per-op estimate (:func:`repro.hw.report.per_op_predicted_ms`).  The joined
rows are the paper's predicted-vs-implemented gap at *op* granularity, and
``repro calibrate --per-op`` feeds them straight into
:func:`repro.hw.calibration.fit_calibration_scale`.
"""

from __future__ import annotations

from typing import Mapping

__all__ = ["profile_report", "render_profile_table"]


def profile_report(engine, target: str | None = None,
                   device: str | None = None,
                   bits: int | None = None) -> dict:
    """Build the per-op profile payload for a profiled engine.

    ``engine`` is a :class:`repro.runtime.engine.Engine` that has executed at
    least one ``run(..., profile=True)`` call.  With ``target`` set, every
    row gains ``predicted_ms`` (analytic estimate for that op, batch-1) and
    ``measured_over_predicted``; ``bits`` defaults to the plan's deployed
    bit-width.  Measured means are per profiled call, so profile at batch 1
    when comparing against the batch-1 analytic estimates.
    """
    plan = engine.plan
    payload: dict = {
        "model": plan.name,
        "bits": plan.bits,
        "target": None,
        "device": None,
        "rows": [],
    }
    predicted = None
    if target is not None:
        from repro.hw.report import per_op_predicted_ms

        effective_bits = bits if bits is not None else plan.bits
        predicted = per_op_predicted_ms(
            plan, target, device=device, bits=effective_bits
        )
        payload.update(
            target=predicted["target"],
            device=predicted["device"],
            bits=predicted["bits"],
            clamped=predicted["clamped"],
            supported=predicted["supported"],
            note=predicted["note"],
        )
    rows = []
    total_measured = 0.0
    total_predicted = 0.0
    for row in engine.op_profile():
        joined = dict(row)
        mean = row["mean_ms"]
        if mean:
            total_measured += mean
        if predicted is not None:
            per_op = predicted["per_op"][row["index"]]
            joined["predicted_ms"] = per_op
            joined["measured_over_predicted"] = (
                mean / per_op if (per_op and mean) else None
            )
            if per_op:
                total_predicted += per_op
        rows.append(joined)
    payload["rows"] = rows
    payload["total_measured_ms"] = total_measured
    if predicted is not None:
        payload["total_predicted_ms"] = total_predicted
    return payload


def render_profile_table(payload: Mapping) -> str:
    """Human-readable table for a :func:`profile_report` payload."""
    has_predicted = any("predicted_ms" in row for row in payload["rows"])
    header = f"{'#':>3s} {'op':22s} {'kind':8s} {'calls':>6s} {'mean ms':>9s}"
    if has_predicted:
        header += f" {'pred ms':>9s} {'meas/pred':>10s}"
    title = f"Per-op profile: {payload.get('model', '?')}"
    if payload.get("target"):
        title += (
            f" vs {payload['target']}/{payload['device']}"
            f" @ {payload.get('bits')}-bit"
        )
    lines = [title, header]
    for row in payload["rows"]:
        mean = row.get("mean_ms")
        line = (
            f"{row['index']:3d} {row['label'][:22]:22s} {row['kind']:8s} "
            f"{row['calls']:6d} "
            f"{mean:9.4f}" if mean is not None else
            f"{row['index']:3d} {row['label'][:22]:22s} {row['kind']:8s} "
            f"{row['calls']:6d} {'-':>9s}"
        )
        if has_predicted:
            predicted = row.get("predicted_ms")
            ratio = row.get("measured_over_predicted")
            line += (
                f" {predicted:9.4f}" if predicted is not None else f" {'-':>9s}"
            )
            line += f" {ratio:10.2f}" if ratio is not None else f" {'-':>10s}"
        lines.append(line)
    total = f"total measured: {payload.get('total_measured_ms', 0.0):.4f} ms"
    if payload.get("total_predicted_ms") is not None:
        total += f"; total predicted: {payload['total_predicted_ms']:.4f} ms"
    lines.append(total)
    if payload.get("note"):
        lines.append(f"note: {payload['note']}")
    return "\n".join(lines)
