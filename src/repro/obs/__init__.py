"""Unified observability layer: spans, counters, sinks, per-op profiles.

``repro.obs`` is the cross-cutting telemetry subsystem threaded through the
three execution tiers of the reproduction:

* the **search** tier (:class:`repro.core.engine.SearchEngine`) emits
  phase/epoch spans and loss/temperature counters;
* the **runtime** tier (:class:`repro.runtime.engine.Engine`) emits a span
  per ``run`` and, with ``profile=True``, a per-op measured table that joins
  against the analytic per-op estimate;
* the **serving** tier (:class:`repro.runtime.fleet.ServingFleet`) emits
  request-lifecycle spans (queued → dispatch → compute) across both the
  thread and the process worker tiers, child-process spans shipped over the
  SUBMIT/RESULT pipe protocol and re-anchored to parent time.

The tracer is disabled by default and near-free when disabled; the
``REPRO_TRACE=0`` environment variable is a global kill switch.  Traces
export as Chrome trace-event JSON (``chrome://tracing``-loadable) or JSONL,
and fleet counters render as Prometheus text.  Entry points:
:func:`repro.api.trace_session`, ``repro serve --trace-out``, ``repro infer
--profile``, ``repro trace summary``.
"""

from repro.obs.profile import profile_report, render_profile_table
from repro.obs.sinks import (
    export_events,
    load_trace,
    prometheus_text,
    write_chrome_trace,
    write_jsonl_trace,
    write_trace,
)
from repro.obs.summary import render_trace_summary, summarize_trace
from repro.obs.tracer import (
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    reanchor_spans,
    set_tracer,
    tracing_allowed,
)

__all__ = [
    "Tracer",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_allowed",
    "reanchor_spans",
    "export_events",
    "write_chrome_trace",
    "write_jsonl_trace",
    "write_trace",
    "load_trace",
    "prometheus_text",
    "profile_report",
    "render_profile_table",
    "summarize_trace",
    "render_trace_summary",
]
