"""Monotonic-clock tracer: spans and counters with a near-zero disabled path.

The tracer is the event producer of :mod:`repro.obs`.  Events are plain
dicts held in memory (timestamps in *seconds* on a monotonic clock) and are
converted to the Chrome trace-event microsecond schema only at export time
(:mod:`repro.obs.sinks`).

Design constraints, in order:

1. **Disabled must be almost free.**  ``Tracer.span()`` on a disabled tracer
   returns a module-level singleton context manager — no allocation, no
   clock read, one attribute check.  The hot runtime loop
   (:meth:`repro.runtime.engine.Engine.run`) checks ``tracer.enabled`` once
   per call, not per op.
2. **Process safe.**  Child fleet workers cannot share the parent's event
   list; they record spans relative to their own clock and ship them over
   the existing RESULT pipe frame.  :func:`reanchor_spans` translates those
   relative timestamps into the parent's timeline.
3. **Deterministic under test.**  The clock is injectable per tracer, and
   :meth:`Tracer.add_span` accepts externally measured ``start``/``duration``
   so fleet code can stamp spans with the fleet clock
   (:mod:`repro.runtime.fleet.clock`), which tests replace with ``FakeClock``.

``REPRO_TRACE=0`` is a global kill switch: tracers constructed while it is
set are forced disabled, no matter what the code asked for.
"""

from __future__ import annotations

import math
import os
import threading
import time
from typing import Callable, Iterable, Mapping

__all__ = [
    "Tracer",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_allowed",
    "reanchor_spans",
]

# Chrome trace-event phase codes used by this tracer.
PH_SPAN = "X"      # complete event: ts + dur
PH_COUNTER = "C"   # counter sample


def tracing_allowed() -> bool:
    """True unless the ``REPRO_TRACE=0`` kill switch is set in the environment."""
    return os.environ.get("REPRO_TRACE", "").strip() != "0"


class _NullSpan:
    """No-op context manager returned by a disabled tracer's ``span()``.

    A single module-level instance is reused for every call so the disabled
    path allocates nothing (pinned by the tracemalloc test in
    ``tests/test_obs_tracer.py``).
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        """Return self; nothing is recorded."""
        return self

    def __exit__(self, *exc: object) -> bool:
        """Never suppress exceptions."""
        return False


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager that records one complete span on exit."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_tid", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Mapping[str, object] | None, tid: int | None) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args
        self._tid = tid
        self._start = 0.0

    def __enter__(self) -> "_SpanContext":
        """Stamp the span start from the tracer clock."""
        self._start = self._tracer.clock()
        return self

    def __exit__(self, *exc: object) -> bool:
        """Stamp the end, append the event, never suppress exceptions."""
        tracer = self._tracer
        tracer.add_span(
            self._name,
            self._start,
            tracer.clock() - self._start,
            cat=self._cat,
            args=self._args,
            tid=self._tid,
        )
        return False


class Tracer:
    """In-memory span/counter recorder with an injectable monotonic clock.

    Events are dicts with keys ``ph`` (phase), ``name``, ``cat``, ``ts``
    (seconds), ``dur`` (seconds, spans only), ``pid``, ``tid`` and optional
    ``args``.  They stay in tracer-clock seconds until a sink converts them
    (:func:`repro.obs.sinks.write_chrome_trace` /
    :func:`~repro.obs.sinks.write_jsonl_trace`).

    ``enabled=True`` is still vetoed by the ``REPRO_TRACE=0`` environment
    kill switch.  Appends rely on the GIL-atomicity of ``list.append`` plus a
    lock only for multi-event operations, so tracing from fleet worker
    threads is safe.
    """

    def __init__(self, enabled: bool = True,
                 clock: Callable[[], float] | None = None) -> None:
        self.enabled = bool(enabled) and tracing_allowed()
        self.clock = clock if clock is not None else time.perf_counter
        self.pid = os.getpid()
        self._events: list[dict] = []
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------

    def span(self, name: str, cat: str = "",
             args: Mapping[str, object] | None = None,
             tid: int | None = None) -> object:
        """Context manager timing a block into one complete span.

        On a disabled tracer this returns a shared no-op singleton; nothing
        is allocated or recorded.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _SpanContext(self, name, cat, args, tid)

    def add_span(self, name: str, start: float, duration: float,
                 cat: str = "", args: Mapping[str, object] | None = None,
                 tid: int | None = None) -> None:
        """Record an externally timed span (``start``/``duration`` in seconds).

        ``start`` must come from the same clock family as the tracer's other
        events (fleet code passes :func:`repro.runtime.fleet.clock.now`
        stamps, which is what makes fleet spans deterministic under
        ``FakeClock``).
        """
        if not self.enabled:
            return
        event = {
            "ph": PH_SPAN,
            "name": name,
            "cat": cat,
            "ts": float(start),
            "dur": max(float(duration), 0.0),
            "pid": self.pid,
            "tid": self._tid(tid),
        }
        if args:
            event["args"] = dict(args)
        self._events.append(event)

    def counter(self, name: str, value: float, cat: str = "",
                tid: int | None = None) -> None:
        """Record a counter sample at the current clock time.

        Non-finite values are dropped: ``NaN``/``inf`` are not valid JSON and
        would poison the exported trace (search losses can go non-finite).
        """
        if not self.enabled:
            return
        value = float(value)
        if not math.isfinite(value):
            return
        self._events.append({
            "ph": PH_COUNTER,
            "name": name,
            "cat": cat,
            "ts": float(self.clock()),
            "pid": self.pid,
            "tid": self._tid(tid),
            "args": {"value": value},
        })

    def extend(self, events: Iterable[dict]) -> None:
        """Append pre-built event dicts (e.g. re-anchored child-worker spans)."""
        if not self.enabled:
            return
        events = list(events)
        with self._lock:
            self._events.extend(events)

    # -- inspection --------------------------------------------------------

    def events(self) -> list[dict]:
        """Snapshot copy of all recorded events."""
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        """Drop all recorded events."""
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def _tid(self, tid: int | None) -> int:
        if tid is not None:
            return int(tid)
        return threading.get_ident() & 0x7FFFFFFF


# -- global default tracer -------------------------------------------------

_global_tracer = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """Return the process-global tracer (disabled by default)."""
    return _global_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-global tracer; return the previous one."""
    global _global_tracer
    previous = _global_tracer
    _global_tracer = tracer
    return previous


def enable_tracing(clock: Callable[[], float] | None = None) -> Tracer:
    """Install and return a fresh enabled global tracer.

    Still subject to the ``REPRO_TRACE=0`` kill switch: the returned tracer
    is disabled when the switch is set.
    """
    tracer = Tracer(enabled=True, clock=clock)
    set_tracer(tracer)
    return tracer


def disable_tracing() -> Tracer:
    """Install and return a fresh disabled global tracer."""
    tracer = Tracer(enabled=False)
    set_tracer(tracer)
    return tracer


def reanchor_spans(events: Iterable[dict], anchor: float,
                   pid: int | None = None, tid: int | None = None,
                   extra_args: Mapping[str, object] | None = None) -> list[dict]:
    """Translate relative-time span events onto a parent timeline.

    Fleet child workers record spans with ``ts`` relative to the moment they
    received the batch (their time zero).  The parent re-anchors them by
    adding ``anchor`` — the parent-clock start of its own submit span — so
    the child spans nest inside it: a child span's relative end can never
    exceed the parent's send→receive interval.

    ``pid``/``tid`` override the child-recorded ids so the spans group under
    the parent's process and the dispatching worker lane in trace viewers;
    ``extra_args`` is merged into each span's ``args``.
    """
    anchored: list[dict] = []
    for event in events:
        moved = dict(event)
        moved["ts"] = float(moved.get("ts", 0.0)) + float(anchor)
        if pid is not None:
            moved["pid"] = int(pid)
        if tid is not None:
            moved["tid"] = int(tid)
        if extra_args:
            merged = dict(moved.get("args") or {})
            merged.update(extra_args)
            moved["args"] = merged
        anchored.append(moved)
    return anchored
