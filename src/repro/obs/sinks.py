"""Trace sinks: Chrome trace-event JSON, JSONL event log, Prometheus text.

Tracer events carry timestamps in seconds (see :mod:`repro.obs.tracer`);
both file sinks convert to the Chrome trace-event schema — ``ts``/``dur``
in **microseconds**, ``ph`` phase codes, ``pid``/``tid`` lanes — so a JSONL
log holds exactly the same objects as the ``traceEvents`` array of the
Chrome JSON, one per line.  :func:`load_trace` reads either format back.

:func:`prometheus_text` is the third sink: it renders a fleet
``stats()`` snapshot (:meth:`repro.runtime.fleet.ServingFleet.stats`) as
Prometheus text exposition, for scraping or for ``repro serve
--metrics-out``.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping

__all__ = [
    "export_events",
    "write_chrome_trace",
    "write_jsonl_trace",
    "write_trace",
    "load_trace",
    "prometheus_text",
]


def export_events(events: Iterable[Mapping[str, object]]) -> list[dict]:
    """Convert tracer events (seconds) to Chrome trace-event dicts (µs).

    ``ts``/``dur`` become integer microseconds; all other fields pass
    through.  Counter events (``ph: "C"``) have no ``dur``.
    """
    out: list[dict] = []
    for event in events:
        converted = dict(event)
        converted["ts"] = int(round(float(converted.get("ts", 0.0)) * 1e6))
        if "dur" in converted:
            converted["dur"] = int(round(float(converted["dur"]) * 1e6))
        out.append(converted)
    return out


def write_chrome_trace(events: Iterable[Mapping[str, object]], path: str) -> int:
    """Write events as Chrome trace-event JSON loadable by ``chrome://tracing``.

    Returns the number of events written.  The file is a single JSON object
    ``{"traceEvents": [...], "displayTimeUnit": "ms"}``.
    """
    exported = export_events(events)
    payload = {"traceEvents": exported, "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, allow_nan=False)
        fh.write("\n")
    return len(exported)


def write_jsonl_trace(events: Iterable[Mapping[str, object]], path: str) -> int:
    """Write events as JSONL (one Chrome-schema event object per line).

    Returns the number of events written.
    """
    exported = export_events(events)
    with open(path, "w", encoding="utf-8") as fh:
        for event in exported:
            fh.write(json.dumps(event, allow_nan=False))
            fh.write("\n")
    return len(exported)


def write_trace(events: Iterable[Mapping[str, object]], path: str) -> int:
    """Write events picking the format from the file extension.

    ``.jsonl``/``.ndjson`` → JSONL event log; anything else → Chrome
    trace-event JSON.  Returns the number of events written.
    """
    if path.endswith((".jsonl", ".ndjson")):
        return write_jsonl_trace(events, path)
    return write_chrome_trace(events, path)


def load_trace(path: str) -> list[dict]:
    """Read a trace written by either file sink; return Chrome-schema events.

    Accepts Chrome trace JSON (``{"traceEvents": [...]}`` or a bare event
    array) and JSONL.  Timestamps stay in microseconds, as stored.
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    stripped = text.lstrip()
    if not stripped:
        return []
    if stripped.startswith("{"):
        try:
            payload = json.loads(stripped)
        except json.JSONDecodeError:
            payload = None
        # Only a dict with a traceEvents key is the Chrome wrapper; a lone
        # event object is a one-line JSONL file and falls through below.
        if isinstance(payload, dict) and "traceEvents" in payload:
            events = payload["traceEvents"]
            if not isinstance(events, list):
                raise ValueError(f"{path}: traceEvents is not a list")
            return events
    if stripped.startswith("["):
        events = json.loads(stripped)
        if not isinstance(events, list):
            raise ValueError(f"{path}: expected a JSON array of events")
        return events
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def prometheus_text(stats: Mapping[str, object], prefix: str = "repro_fleet") -> str:
    """Render a fleet ``stats()`` snapshot as Prometheus text exposition.

    Emits per-model admission counters (``<prefix>_requests_total`` with
    ``model``/``outcome`` labels), queue-depth gauges, latency-quantile
    gauges, batch counters, and per-worker busy/crash/utilisation series.
    """
    lines: list[str] = []

    def metric(name: str, kind: str, help_text: str) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    def sample(name: str, labels: dict[str, object], value: float) -> None:
        if labels:
            body = ",".join(
                f'{key}="{_prom_escape(str(val))}"' for key, val in labels.items()
            )
            lines.append(f"{name}{{{body}}} {value}")
        else:
            lines.append(f"{name} {value}")

    models = stats.get("models", {}) or {}
    metric(f"{prefix}_requests_total", "counter",
           "Requests by model and admission/serving outcome.")
    for model, block in models.items():
        for outcome in ("accepted", "rejected", "shed", "completed", "failed"):
            sample(f"{prefix}_requests_total",
                   {"model": model, "outcome": outcome},
                   float(block.get(outcome, 0)))

    metric(f"{prefix}_queue_depth", "gauge", "Requests waiting per model queue.")
    for model, block in models.items():
        sample(f"{prefix}_queue_depth", {"model": model},
               float(block.get("queue_depth", 0)))

    metric(f"{prefix}_latency_ms", "gauge",
           "Request latency summary per model (milliseconds).")
    for model, block in models.items():
        latency = block.get("latency_ms")
        if not latency:
            continue
        for key, label in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
            if key in latency:
                sample(f"{prefix}_latency_ms",
                       {"model": model, "quantile": label}, float(latency[key]))
        if "mean" in latency:
            sample(f"{prefix}_latency_ms_mean", {"model": model},
                   float(latency["mean"]))
        if "max" in latency:
            sample(f"{prefix}_latency_ms_max", {"model": model},
                   float(latency["max"]))

    metric(f"{prefix}_batches_total", "counter", "Batches served per model.")
    for model, block in models.items():
        sample(f"{prefix}_batches_total", {"model": model},
               float(block.get("batches", 0)))

    workers = stats.get("workers", []) or []
    metric(f"{prefix}_worker_busy_seconds_total", "counter",
           "Cumulative busy time per worker.")
    for index, block in enumerate(workers):
        sample(f"{prefix}_worker_busy_seconds_total", {"worker": index},
               float(block.get("busy_s", 0.0)))
    metric(f"{prefix}_worker_crashes_total", "counter",
           "Worker crashes detected by the supervisor.")
    for index, block in enumerate(workers):
        sample(f"{prefix}_worker_crashes_total", {"worker": index},
               float(block.get("crashes", 0)))
    metric(f"{prefix}_worker_utilization", "gauge",
           "Busy seconds over wall seconds since fleet start.")
    for index, block in enumerate(workers):
        sample(f"{prefix}_worker_utilization", {"worker": index},
               float(block.get("utilization", 0.0)))

    metric(f"{prefix}_uptime_seconds", "gauge", "Fleet uptime.")
    sample(f"{prefix}_uptime_seconds", {}, float(stats.get("uptime_s", 0.0)))
    return "\n".join(lines) + "\n"
