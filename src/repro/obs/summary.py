"""Trace summaries: top ops by self-time, per-model queue-wait percentiles.

Consumes Chrome-schema events (microsecond ``ts``/``dur``) as produced by
:func:`repro.obs.sinks.load_trace`, so it works on both the Chrome JSON and
the JSONL sink output.  Self-time is a span's duration minus the durations
of its directly nested children within the same ``(pid, tid)`` lane — the
metric that makes "where does time actually go" answerable when spans nest
(``request`` > ``request.compute`` > ``engine.run``).

Shared by ``repro trace summary`` and ``tools/trace_summary.py`` (CI).
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

__all__ = ["summarize_trace", "render_trace_summary"]

#: Span name the fleet emits for the enqueue→dispatch wait of one request.
QUEUE_SPAN = "request.queued"
#: Span name of the whole request lifecycle.
REQUEST_SPAN = "request"


def _self_times(spans: list[dict]) -> dict[str, dict]:
    """Per-name {calls, total_us, self_us} via a per-lane stack walk."""
    lanes: dict[tuple, list[dict]] = {}
    for span in spans:
        lanes.setdefault((span.get("pid"), span.get("tid")), []).append(span)
    ops: dict[str, dict] = {}

    def account(name: str, dur: float, child: float) -> None:
        row = ops.setdefault(name, {"calls": 0, "total_us": 0.0, "self_us": 0.0})
        row["calls"] += 1
        row["total_us"] += dur
        row["self_us"] += max(dur - child, 0.0)

    for lane in lanes.values():
        # Sort by start; ties open the longer span first so it parents the
        # shorter one.
        lane.sort(key=lambda s: (s.get("ts", 0), -s.get("dur", 0)))
        stack: list[list] = []  # [name, end_ts, dur, child_us]
        for span in lane:
            ts = float(span.get("ts", 0))
            dur = float(span.get("dur", 0))
            while stack and ts >= stack[-1][1]:
                done = stack.pop()
                account(done[0], done[2], done[3])
            if stack:
                stack[-1][3] += dur
            stack.append([span.get("name", "?"), ts + dur, dur, 0.0])
        while stack:
            done = stack.pop()
            account(done[0], done[2], done[3])
    return ops


def summarize_trace(events: Iterable[Mapping]) -> dict:
    """Aggregate a trace into op self-times and request queue-wait stats.

    Returns ``{"events", "spans", "requests", "ops", "queue_wait_ms"}`` where
    ``ops`` is sorted by self-time (descending, milliseconds) and
    ``queue_wait_ms`` maps model name to count/p50/p95/max of the
    enqueue→dispatch wait taken from ``request.queued`` spans.
    """
    events = list(events)
    spans = [e for e in events if e.get("ph") == "X"]
    ops = _self_times(spans)
    op_rows = sorted(
        (
            {
                "name": name,
                "calls": row["calls"],
                "total_ms": row["total_us"] / 1e3,
                "self_ms": row["self_us"] / 1e3,
            }
            for name, row in ops.items()
        ),
        key=lambda row: row["self_ms"],
        reverse=True,
    )
    waits: dict[str, list[float]] = {}
    for span in spans:
        if span.get("name") != QUEUE_SPAN:
            continue
        model = str((span.get("args") or {}).get("model", "?"))
        waits.setdefault(model, []).append(float(span.get("dur", 0)) / 1e3)
    queue_wait = {}
    for model, samples in sorted(waits.items()):
        arr = np.asarray(samples, dtype=np.float64)
        queue_wait[model] = {
            "count": int(arr.size),
            "p50_ms": float(np.percentile(arr, 50)),
            "p95_ms": float(np.percentile(arr, 95)),
            "max_ms": float(arr.max()),
        }
    return {
        "events": len(events),
        "spans": len(spans),
        "requests": sum(1 for s in spans if s.get("name") == REQUEST_SPAN),
        "ops": op_rows,
        "queue_wait_ms": queue_wait,
    }


def render_trace_summary(summary: Mapping, top: int = 15) -> str:
    """Human-readable rendering of a :func:`summarize_trace` result."""
    lines = [
        f"{summary['events']} events, {summary['spans']} spans, "
        f"{summary['requests']} requests",
    ]
    if summary["ops"]:
        lines.append("")
        lines.append(f"top {min(top, len(summary['ops']))} ops by self-time:")
        lines.append(
            f"{'name':28s} {'calls':>7s} {'self ms':>10s} {'total ms':>10s}"
        )
        for row in summary["ops"][:top]:
            lines.append(
                f"{row['name'][:28]:28s} {row['calls']:7d} "
                f"{row['self_ms']:10.3f} {row['total_ms']:10.3f}"
            )
    if summary["queue_wait_ms"]:
        lines.append("")
        lines.append("queue wait per model (enqueue -> dispatch):")
        lines.append(
            f"{'model':20s} {'count':>7s} {'p50 ms':>9s} {'p95 ms':>9s} "
            f"{'max ms':>9s}"
        )
        for model, stats in summary["queue_wait_ms"].items():
            lines.append(
                f"{model[:20]:20s} {stats['count']:7d} {stats['p50_ms']:9.3f} "
                f"{stats['p95_ms']:9.3f} {stats['max_ms']:9.3f}"
            )
    return "\n".join(lines)
