"""The :class:`Tensor` node type, the dtype policy and graph-walking ``backward``.

A tensor is a numpy array plus (optionally) a record of how it was computed:
its ``parents`` and a ``backward_fn`` mapping the output gradient to one
gradient per parent.  ``Tensor.backward()`` topologically sorts the graph and
accumulates gradients into every leaf with ``requires_grad=True``.

Dtype policy
------------
Every tensor holds its array in the *default dtype* — ``float32`` unless
changed via :func:`set_default_dtype` or the :func:`default_dtype` context
manager.  Op outputs are coerced back to the policy dtype by ``make_op``, so
a graph can never silently upcast (a float64 constant slipping into one op
does not poison everything downstream).  ``float64`` remains available for
precision-critical work — :func:`repro.autograd.gradcheck.gradcheck` runs its
finite differences under a ``float64`` policy regardless of the global
setting.
"""

from __future__ import annotations

import contextlib
from collections.abc import Callable, Iterator, Sequence
from typing import Any

import numpy as np

from repro.autograd.pool import get_pool

# Backward closures receive the gradient flowing into the op's output and
# return one array (or None) per parent, already shaped like that parent.
BackwardFn = Callable[[np.ndarray], Sequence[np.ndarray | None]]

_grad_enabled = True

SUPPORTED_DTYPES = (np.float32, np.float64)

_default_dtype = np.dtype(np.float32)


def _as_dtype(dtype: Any) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved not in (np.dtype(d) for d in SUPPORTED_DTYPES):
        supported = [np.dtype(d).name for d in SUPPORTED_DTYPES]
        raise ValueError(
            f"unsupported dtype {resolved.name!r}; supported: {supported}"
        )
    return resolved


def set_default_dtype(dtype: Any) -> np.dtype:
    """Set the global tensor dtype policy; returns the *previous* dtype.

    ``float32`` (the default) is the fast path for search and training;
    ``float64`` is retained for gradcheck-grade numerics.  Tensors created
    before the switch keep their dtype — the policy applies to construction
    and to op outputs from this point on.
    """
    global _default_dtype
    previous = _default_dtype
    _default_dtype = _as_dtype(dtype)
    return previous


def get_default_dtype() -> np.dtype:
    """The dtype newly constructed tensors (and op outputs) are coerced to."""
    return _default_dtype


@contextlib.contextmanager
def default_dtype(dtype: Any) -> Iterator[np.dtype]:
    """Scoped :func:`set_default_dtype` (restores the previous policy)."""
    previous = set_default_dtype(dtype)
    try:
        yield _default_dtype
    finally:
        set_default_dtype(previous)


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Disable graph recording inside the ``with`` block (inference mode)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def is_grad_enabled() -> bool:
    return _grad_enabled


class Tensor:
    """A differentiable numpy array node.

    Parameters
    ----------
    data:
        Array-like; stored in the policy dtype (see :func:`set_default_dtype`)
        unless an explicit ``dtype`` is given.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad``.
    dtype:
        Explicit storage dtype overriding the policy (``float32``/``float64``).
    parents, backward_fn, op_name:
        Graph-construction internals filled in by the op layer; user code
        never passes these.
    """

    __slots__ = (
        "data", "requires_grad", "grad", "parents", "backward_fn", "op_name",
        "_retire", "_pooled_data",
    )

    def __init__(
        self,
        data: Any,
        requires_grad: bool = False,
        parents: tuple["Tensor", ...] = (),
        backward_fn: BackwardFn | None = None,
        op_name: str = "leaf",
        dtype: Any = None,
    ) -> None:
        target = _default_dtype if dtype is None else _as_dtype(dtype)
        self.data = np.asarray(data, dtype=target)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self.parents = parents
        self.backward_fn = backward_fn
        self.op_name = op_name
        # Buffer-pool bookkeeping (see repro.autograd.pool): scratch arrays
        # to return when this tape node retires during backward, and whether
        # ``data`` itself is a pooled buffer.
        self._retire: tuple[np.ndarray, ...] = ()
        self._pooled_data = False

    # -- basic introspection ------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data.reshape(()))

    def numpy(self) -> np.ndarray:
        """The underlying array (not a copy — treat as read-only)."""
        return self.data

    def __len__(self) -> int:
        return self.data.shape[0]

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self.op_name!r}{grad_flag})"

    # -- graph management ---------------------------------------------------
    def detach(self) -> "Tensor":
        """A view of the same data cut off from the graph (dtype preserved).

        If the data is a pooled scratch buffer (recycled when this node
        retires during backward), the detached tensor gets its own copy so it
        stays valid afterwards.
        """
        if self._pooled_data:
            return Tensor(self.data.copy(), requires_grad=False, dtype=self.data.dtype)
        return Tensor(self.data, requires_grad=False, dtype=self.data.dtype)

    def astype(self, dtype: Any) -> "Tensor":
        """A graph-detached copy in ``dtype`` (explicit, never silent).

        Like :meth:`detach`, pooled data is copied so the result stays valid
        after backward recycles this node's buffer.
        """
        if self._pooled_data and np.dtype(dtype) == self.data.dtype:
            return Tensor(self.data.copy(), requires_grad=False, dtype=dtype)
        return Tensor(self.data, requires_grad=False, dtype=dtype)

    def zero_grad(self) -> None:
        if self.grad is not None:
            # Pooled gradient buffers (see backward) go back to the free
            # list here; release is a no-op for ordinary arrays.
            get_pool().release(self.grad)
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (for scalar losses that is the usual seed).
        Gradients accumulate (+=) into every reachable tensor that has
        ``requires_grad=True``, including intermediates.

        Backward also *retires* each tape node right after its closure runs:
        scratch buffers the forward checked out of the
        :class:`repro.autograd.pool.BufferPool` (im2col columns, padded
        inputs, pooled op outputs) are returned to the pool deterministically
        — a node's consumers always retire before it, so nothing reachable
        still reads them.  The root's data is swapped for a private copy
        rather than invalidated (losses are read after backward), and leaves
        are never pooled.
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"seed gradient shape {grad.shape} does not match tensor "
                    f"shape {self.data.shape}"
                )

        pool = get_pool()
        # The root's memory must survive backward even when the root is a
        # zero-copy view (reshape/flatten) of some pooled node's buffer:
        # compare released buffers against the root's base, not just the
        # root node itself.
        root_base = self.data if self.data.base is None else self.data.base
        order = _topological_order(self)
        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad:
                if node.grad is None:
                    if pool.enabled:
                        # Leaf gradients live until the optimiser consumes
                        # them; zero_grad returns the buffer to the pool.
                        buf = pool.acquire(node_grad.shape, node_grad.dtype)
                        np.copyto(buf, node_grad)
                        node.grad = buf
                    else:
                        node.grad = node_grad.copy()
                elif pool.owns(node.grad):
                    node.grad += node_grad
                else:
                    node.grad = node.grad + node_grad
            if node.backward_fn is not None:
                parent_grads = node.backward_fn(node_grad)
                for parent, parent_grad in zip(node.parents, parent_grads):
                    if parent_grad is None:
                        continue
                    if parent_grad.shape != parent.data.shape:
                        raise RuntimeError(
                            f"op {node.op_name!r} produced gradient of shape "
                            f"{parent_grad.shape} for parent of shape "
                            f"{parent.data.shape}"
                        )
                    existing = grads.get(id(parent))
                    grads[id(parent)] = (
                        parent_grad if existing is None else existing + parent_grad
                    )
            # Retire the node: its backward ran and all consumers already
            # retired, so its pooled scratch and pooled output can be
            # recycled.  The root keeps a private copy of its data (losses
            # are read after backward), so no buffer outlives the tape.
            if node._retire:
                for scratch in node._retire:
                    pool.release(scratch)
                node._retire = ()
            if node._pooled_data:
                node._pooled_data = False
                pooled = node.data
                base = pooled if pooled.base is None else pooled.base
                if base is root_base:
                    # The root reads this memory after backward (directly,
                    # or through a view chain): give it a private copy
                    # before the buffer goes back to the free lists.
                    self.data = self.data.copy()
                    root_base = None
                pool.release(pooled)

    # -- operator sugar (implementations live in the ops modules) -----------
    def __add__(self, other: Any) -> "Tensor":
        from repro.autograd.ops_basic import add

        return add(self, _coerce(other))

    __radd__ = __add__

    def __sub__(self, other: Any) -> "Tensor":
        from repro.autograd.ops_basic import sub

        return sub(self, _coerce(other))

    def __rsub__(self, other: Any) -> "Tensor":
        from repro.autograd.ops_basic import sub

        return sub(_coerce(other), self)

    def __mul__(self, other: Any) -> "Tensor":
        from repro.autograd.ops_basic import mul

        return mul(self, _coerce(other))

    __rmul__ = __mul__

    def __truediv__(self, other: Any) -> "Tensor":
        from repro.autograd.ops_basic import div

        return div(self, _coerce(other))

    def __rtruediv__(self, other: Any) -> "Tensor":
        from repro.autograd.ops_basic import div

        return div(_coerce(other), self)

    def __neg__(self) -> "Tensor":
        from repro.autograd.ops_basic import neg

        return neg(self)

    def __pow__(self, exponent: float) -> "Tensor":
        from repro.autograd.ops_basic import pow_

        return pow_(self, exponent)

    def __matmul__(self, other: Any) -> "Tensor":
        from repro.autograd.ops_nn import matmul

        return matmul(self, _coerce(other))

    def __getitem__(self, index: Any) -> "Tensor":
        from repro.autograd.ops_shape import getitem

        return getitem(self, index)

    # Convenience method forms --------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        from repro.autograd.ops_reduce import sum_reduce

        return sum_reduce(self, axis=axis, keepdims=keepdims)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        from repro.autograd.ops_reduce import mean

        return mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape: int) -> "Tensor":
        from repro.autograd.ops_shape import reshape

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return reshape(self, shape)

    def exp(self) -> "Tensor":
        from repro.autograd.ops_basic import exp

        return exp(self)

    def log(self) -> "Tensor":
        from repro.autograd.ops_basic import log

        return log(self)

    def tanh(self) -> "Tensor":
        from repro.autograd.ops_basic import tanh

        return tanh(self)


def tensor(data: Any, requires_grad: bool = False, dtype: Any = None) -> Tensor:
    """Construct a leaf tensor (the public constructor)."""
    return Tensor(data, requires_grad=requires_grad, dtype=dtype)


def _coerce(value: Any) -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def make_op(
    out_data: np.ndarray,
    parents: tuple[Tensor, ...],
    backward_fn: BackwardFn,
    op_name: str,
    retire: tuple[np.ndarray, ...] = (),
    pooled_out: bool = False,
) -> Tensor:
    """Create an op-output tensor, respecting ``no_grad`` mode.

    The output participates in the graph only if grad mode is on and at least
    one parent (transitively) requires gradients.

    ``retire`` names pooled scratch buffers (and ``pooled_out`` marks
    ``out_data`` itself as pooled) to return to the
    :class:`~repro.autograd.pool.BufferPool` when the node retires during
    backward.  Ops obtain such buffers via :func:`pool_for_op`, which only
    hands out the pool when the node will actually join the tape — if it
    nevertheless does not (a race the defensive branch below covers), the
    buffers are released immediately instead of leaking.
    """
    track = _grad_enabled and any(_needs_graph(p) for p in parents)
    if not track:
        if retire or pooled_out:
            pool = get_pool()
            for scratch in retire:
                pool.release(scratch)
        return Tensor(out_data, op_name=op_name)
    out = Tensor(
        out_data,
        parents=parents,
        backward_fn=backward_fn,
        op_name=op_name,
    )
    if retire:
        out._retire = tuple(retire)
    if pooled_out:
        if out.data is out_data:
            out._pooled_data = True
        else:
            # The Tensor constructor coerced (copied) the buffer — e.g. a
            # non-policy dtype slipped in.  Return the orphaned buffer now.
            get_pool().release(out_data)
    return out


def pool_for_op(*parents: Tensor) -> "Any":
    """The active :class:`~repro.autograd.pool.BufferPool`, or ``None``.

    Ops use this as the single gate for pooled allocations: it returns the
    thread's pool only when the pool is enabled **and** the op output will be
    recorded on the tape for these parents (grad mode on, some parent needs
    the graph) — the condition under which ``backward`` is guaranteed to
    retire the node and return the buffers.
    """
    if not _grad_enabled:
        return None
    pool = get_pool()
    if not pool.enabled:
        return None
    if any(_needs_graph(p) for p in parents):
        return pool
    return None


def _needs_graph(t: Tensor) -> bool:
    return t.requires_grad or t.backward_fn is not None


def _topological_order(root: Tensor) -> list[Tensor]:
    """Reverse topological order (root first), iterative to spare the stack."""
    order: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node.parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    order.reverse()
    return order


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)
