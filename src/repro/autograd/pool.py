"""Scratch-buffer pool for the training hot path.

ROADMAP flags the search loop's remaining headroom as *allocation-bound*:
every conv forward materialises an im2col column matrix and a padded-input
canvas, every BatchNorm a normalised temporary, and every backward two more
canvases — all freed one step later and re-allocated the next.  The compiled
inference runtime solved this with a statically planned arena
(:mod:`repro.runtime.arena`); training graphs change shape with every Gumbel
sample, so a static plan is impossible.  :class:`BufferPool` is the dynamic
equivalent: a size-bucketed, dtype-aware free list that ops check scratch
buffers out of and return when the tape node that owns them retires during
``Tensor.backward`` — so epoch ``k+1`` runs in the arrays epoch ``k``
allocated.

Lifecycle contract
------------------
* Ops acquire buffers only while the pool is *enabled* (scoped via
  :func:`buffer_pool` — :class:`repro.core.engine.SearchEngine` enables it
  around its epoch loop) **and** the result will join a backward-reachable
  graph.  ``release`` works regardless of the enabled flag, so a graph built
  inside the scope can retire outside it.
* Two kinds of checkout: *retire-scoped* buffers (im2col columns, padded
  inputs, op outputs) are registered on their tape node and released by
  ``Tensor.backward`` right after the node's backward closure runs;
  *call-scoped* buffers (backward canvases) are acquired and released inside
  one kernel invocation.
* While the pool is enabled, the ``data`` of **non-leaf, non-root** tensors
  becomes invalid once ``backward()`` returns — the arrays are back in the
  free lists.  Leaves (parameters, inputs), the backward root (the loss) and
  anything below :data:`MIN_POOL_ELEMS` are never pooled, which keeps the
  ubiquitous post-backward reads (``loss.item()``, scalar telemetry) valid.
* Aliasing safety is structural: a checked-out buffer lives in the pool's
  out-table (and nowhere else reachable by ``acquire``), so it cannot be
  handed out twice; releasing an array the pool does not own is a no-op.

Pools are per-thread (:func:`get_pool`), so parallel evaluators running
training loops in threads cannot hand one thread's scratch to another.
"""

from __future__ import annotations

import contextlib
import os
import threading
from collections.abc import Iterator
from typing import Any

import numpy as np

#: Arrays smaller than this (in elements) are never pooled: the bookkeeping
#: costs more than the allocation, and keeping scalars/logits unpooled is
#: what makes post-backward reads of small tensors (losses, telemetry) safe.
MIN_POOL_ELEMS = 512

#: Environment kill-switch: ``REPRO_BUFFER_POOL=0`` keeps the pool disabled
#: even where the engine would enable it (debugging aid).
_ENV_SWITCH = "REPRO_BUFFER_POOL"


def _bucket_elems(elems: int) -> int:
    """Round ``elems`` up to the pool's bucket size (next power of two).

    Power-of-two buckets let differently-shaped ops of similar size share
    buffers (the supernet's candidate branches produce a small set of
    distinct sizes per resolution), at a bounded <2x memory overhead.
    """
    return 1 << (elems - 1).bit_length()


class BufferPool:
    """Size-bucketed, dtype-aware free list of scratch ndarrays.

    ``acquire`` returns an ndarray view of the requested shape backed by a
    bucketed 1-D base array; ``release`` returns the base to its free list.
    The pool tracks every checked-out base in ``_out`` keyed by ``id`` —
    holding the reference keeps the id stable and makes double-handout
    impossible (a base is either in exactly one free list or in ``_out``).
    """

    def __init__(self) -> None:
        self._free: dict[tuple[int, str], list[np.ndarray]] = {}
        self._out: dict[int, tuple[np.ndarray, tuple[int, str]]] = {}
        self.enabled = False
        # Telemetry: acquires split into free-list hits and fresh mallocs.
        self.hits = 0
        self.misses = 0
        self.releases = 0

    # -- checkout -----------------------------------------------------------
    def acquire(self, shape: tuple[int, ...], dtype: Any, zero: bool = False) -> np.ndarray:
        """Check out an array of ``shape``/``dtype`` (zero-filled on request).

        Falls back to a plain ``np.zeros``/``np.empty`` when the pool is
        disabled or the request is below :data:`MIN_POOL_ELEMS`, so callers
        can route through the pool unconditionally.
        """
        elems = 1
        for dim in shape:
            elems *= dim
        if not self.enabled or elems < MIN_POOL_ELEMS:
            return np.zeros(shape, dtype) if zero else np.empty(shape, dtype)
        # Hot path: callers pass ndarray.dtype (an np.dtype instance), so
        # the .char lookup usually avoids an np.dtype() round-trip; the
        # bucket computation is _bucket_elems inlined.
        char = dtype.char if isinstance(dtype, np.dtype) else np.dtype(dtype).char
        key = (1 << (elems - 1).bit_length(), char)
        stack = self._free.get(key)
        if stack:
            base = stack.pop()
            self.hits += 1
        else:
            base = np.empty(key[0], dtype)
            self.misses += 1
        self._out[id(base)] = (base, key)
        view = base[:elems].reshape(shape)
        if zero:
            view.fill(0.0)
        return view

    def owns(self, array: np.ndarray) -> bool:
        """Whether ``array`` is (a view of) a currently checked-out buffer."""
        base = array if array.base is None else array.base
        return id(base) in self._out

    def release(self, array: np.ndarray) -> bool:
        """Return a checked-out buffer to its free list.

        Accepts the view ``acquire`` returned (or any view of its base).
        Arrays the pool does not own — including already-released ones — are
        ignored, so callers may release unconditionally.  Returns whether the
        array was actually pooled.
        """
        base = array if array.base is None else array.base
        entry = self._out.pop(id(base), None)
        if entry is None:
            return False
        base, key = entry
        self._free.setdefault(key, []).append(base)
        self.releases += 1
        return True

    def sweep(self) -> int:
        """Reclaim checked-out buffers whose graphs are gone; returns count.

        Retirement during ``backward`` is the normal release path, but a
        graph that is never backwarded (an exception between forward and
        backward, an eval forward missing ``no_grad``) strands its buffers:
        the out-table's strong reference keeps them alive forever.  Once
        such a graph is garbage-collected, the only remaining reference to
        the base is the out-table itself — detectable via the refcount —
        and the buffer can safely rejoin its free list.  The engine calls
        this between epochs as a safety valve.
        """
        import sys

        stranded = [
            key_id
            for key_id, entry in self._out.items()
            # 2 == the out-table tuple + getrefcount's own argument (no
            # extra name is bound to the base here); any live view or
            # external reference pushes this higher.
            if sys.getrefcount(entry[0]) == 2
        ]
        for key_id in stranded:
            base, key = self._out.pop(key_id)
            self._free.setdefault(key, []).append(base)
        return len(stranded)

    # -- lifecycle ----------------------------------------------------------
    def reset(self) -> None:
        """Drop every free list and forget checked-out buffers.

        Forgotten checkouts become ordinary garbage-collectable arrays; use
        this to reclaim memory between workloads of very different shapes.
        """
        self._free.clear()
        self._out.clear()

    @property
    def outstanding(self) -> int:
        """Number of buffers currently checked out (0 after a clean step)."""
        return len(self._out)

    @property
    def pooled_bytes(self) -> int:
        """Total bytes parked in the free lists."""
        return sum(b.nbytes for stack in self._free.values() for b in stack)

    def stats(self) -> dict[str, int]:
        """Telemetry counters (JSON-serialisable)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "releases": self.releases,
            "outstanding": self.outstanding,
            "pooled_bytes": self.pooled_bytes,
            "free_buffers": sum(len(s) for s in self._free.values()),
        }


_local = threading.local()


def get_pool() -> BufferPool:
    """This thread's :class:`BufferPool` (created on first use)."""
    pool = getattr(_local, "pool", None)
    if pool is None:
        pool = _local.pool = BufferPool()
    return pool


@contextlib.contextmanager
def buffer_pool(enabled: bool = True) -> Iterator[BufferPool]:
    """Scope the pool's enabled flag (free lists persist across scopes).

    The ``REPRO_BUFFER_POOL=0`` environment kill-switch wins over
    ``enabled=True``.  Nesting restores the previous flag on exit, so an
    inner ``buffer_pool(False)`` (e.g. a bench measuring the unpooled
    baseline) composes with an enclosing enabled scope.
    """
    pool = get_pool()
    if os.environ.get(_ENV_SWITCH, "1") == "0":
        enabled = False
    previous = pool.enabled
    pool.enabled = enabled
    try:
        yield pool
    finally:
        pool.enabled = previous
