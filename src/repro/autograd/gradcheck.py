"""Numerical gradient verification.

``gradcheck`` compares the analytic gradients produced by ``backward`` with
central finite differences.  Every primitive op in the engine is validated by
the test-suite through this routine; it is also exported so downstream users
can verify custom composite ops.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> bool:
    """Verify analytic gradients of ``fn`` against finite differences.

    Raises ``AssertionError`` with a diagnostic message on mismatch; returns
    True on success so it can sit inside ``assert gradcheck(...)``.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    out.backward(np.ones_like(out.data))
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch on input {i}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
