"""Numerical gradient verification.

``gradcheck`` compares the analytic gradients produced by ``backward`` with
central finite differences.  Every primitive op in the engine is validated by
the test-suite through this routine; it is also exported so downstream users
can verify custom composite ops.

Even though the library's default dtype policy is ``float32`` (the fast
path), ``gradcheck`` runs under an explicit dtype policy — ``float64`` by
default — because central differences at ``eps=1e-6`` are meaningless in
single precision.  Pass ``dtype=np.float32`` (with loosened ``eps``/``atol``/
``rtol``) to verify that gradients also hold at the production precision.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.autograd.tensor import Tensor, default_dtype


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
    dtype: Any = np.float64,
) -> bool:
    """Verify analytic gradients of ``fn`` against finite differences.

    Inputs are cast to ``dtype`` and both passes run under that dtype policy
    (``float64`` by default, so checks stay precise even when the global
    policy is ``float32``).  Raises ``AssertionError`` with a diagnostic
    message on mismatch; returns True on success so it can sit inside
    ``assert gradcheck(...)``.
    """
    original_data = [t.data for t in inputs]
    try:
        with default_dtype(dtype):
            for t in inputs:
                t.data = np.asarray(t.data, dtype=np.dtype(dtype))
                t.zero_grad()
            out = fn(*inputs)
            out.backward(np.ones_like(out.data))
            for i, t in enumerate(inputs):
                if not t.requires_grad:
                    continue
                analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
                numeric = numerical_gradient(fn, inputs, i, eps=eps)
                if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
                    worst = np.max(np.abs(analytic - numeric))
                    raise AssertionError(
                        f"gradient mismatch on input {i}: max abs diff {worst:.3e}\n"
                        f"analytic:\n{analytic}\nnumeric:\n{numeric}"
                    )
    finally:
        # The check rebinds t.data (dtype cast) and accumulates its own seed
        # gradients; restore the caller's arrays and clear grads so checking
        # a live model never silently changes its state.
        for t, data in zip(inputs, original_data):
            t.data = data
            t.zero_grad()
    return True
