"""Reduction primitives: sum, mean, max and the Log-Sum-Exp smooth maximum.

``logsumexp`` is load-bearing for the reproduction: Eq. 7 of the paper uses
LSE as the differentiable surrogate of ``max`` when the objective is the
throughput of a pipelined accelerator.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor, make_op

Axis = int | tuple[int, ...] | None


def _normalize_axis(axis: Axis, ndim: int) -> tuple[int, ...]:
    if axis is None:
        return tuple(range(ndim))
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(a % ndim for a in axis)


def _restore_dims(grad: np.ndarray, axes: tuple[int, ...], keepdims: bool) -> np.ndarray:
    """Re-insert reduced axes as size-1 dims so the grad broadcasts back."""
    if keepdims:
        return grad
    for a in sorted(axes):
        grad = np.expand_dims(grad, a)
    return grad


def sum_reduce(a: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    axes = _normalize_axis(axis, a.ndim)
    out = a.data.sum(axis=axes, keepdims=keepdims)

    def backward(grad: np.ndarray):
        grad = _restore_dims(grad, axes, keepdims)
        return (np.broadcast_to(grad, a.shape).copy(),)

    return make_op(out, (a,), backward, "sum")


def mean(a: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    axes = _normalize_axis(axis, a.ndim)
    count = int(np.prod([a.shape[ax] for ax in axes])) if axes else 1
    out = a.data.mean(axis=axes, keepdims=keepdims)

    def backward(grad: np.ndarray):
        grad = _restore_dims(grad, axes, keepdims)
        return (np.broadcast_to(grad, a.shape).copy() / count,)

    return make_op(out, (a,), backward, "mean")


def max_reduce(a: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Hard max; the gradient flows to (and is split between) the argmax ties."""
    axes = _normalize_axis(axis, a.ndim)
    out = a.data.max(axis=axes, keepdims=keepdims)
    out_kept = a.data.max(axis=axes, keepdims=True)

    def backward(grad: np.ndarray):
        grad = _restore_dims(grad, axes, keepdims)
        mask = (a.data == out_kept).astype(a.data.dtype)
        mask /= mask.sum(axis=axes, keepdims=True)
        return (mask * grad,)

    return make_op(out, (a,), backward, "max")


def logsumexp(a: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Stable ``log(sum(exp(a)))`` — the paper's Eq. 7 smooth maximum.

    Backward uses the softmax of ``a`` along the reduced axes, which is the
    textbook gradient of LSE.
    """
    axes = _normalize_axis(axis, a.ndim)
    shift = a.data.max(axis=axes, keepdims=True)
    exp_shifted = np.exp(a.data - shift)
    total = exp_shifted.sum(axis=axes, keepdims=True)
    out_kept = shift + np.log(total)
    out = out_kept if keepdims else np.squeeze(out_kept, axis=axes)
    if axis is None and not keepdims:
        out = out.reshape(())
    softmax_vals = exp_shifted / total

    def backward(grad: np.ndarray):
        grad = _restore_dims(grad, axes, keepdims)
        return (softmax_vals * grad,)

    return make_op(out, (a,), backward, "logsumexp")
