"""Elementwise primitives: arithmetic, exponentials, and straight-through ops.

All ops broadcast like numpy and return graph-tracked tensors when any input
requires gradients.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.pool import MIN_POOL_ELEMS
from repro.autograd.tensor import Tensor, make_op, pool_for_op, unbroadcast


def _pooled_binary_out(a: Tensor, b: Tensor, ufunc) -> tuple[np.ndarray, bool]:
    """Apply ``ufunc`` into a pooled buffer when the training pool is active.

    Only same-dtype operands of poolable size qualify (a mixed-dtype result
    would be coerced — copied — by the Tensor constructor, orphaning the
    pooled buffer; tiny results are cheaper to allocate than to bucket); the
    residual adds, straight-through gate multiplies and quantisation mixtures
    on the supernet hot path are all same-dtype and conv-activation sized.
    """
    if max(a.data.size, b.data.size) < MIN_POOL_ELEMS:
        return ufunc(a.data, b.data), False
    pool = pool_for_op(a, b)
    if pool is None or a.data.dtype != b.data.dtype:
        return ufunc(a.data, b.data), False
    out = pool.acquire(np.broadcast_shapes(a.shape, b.shape), a.data.dtype)
    ufunc(a.data, b.data, out=out)
    return out, pool.owns(out)


def add(a: Tensor, b: Tensor) -> Tensor:
    out, pooled = _pooled_binary_out(a, b, np.add)

    def backward(grad: np.ndarray):
        return unbroadcast(grad, a.shape), unbroadcast(grad, b.shape)

    return make_op(out, (a, b), backward, "add", pooled_out=pooled)


def sub(a: Tensor, b: Tensor) -> Tensor:
    out, pooled = _pooled_binary_out(a, b, np.subtract)

    def backward(grad: np.ndarray):
        return unbroadcast(grad, a.shape), unbroadcast(-grad, b.shape)

    return make_op(out, (a, b), backward, "sub", pooled_out=pooled)


def mul(a: Tensor, b: Tensor) -> Tensor:
    out, pooled = _pooled_binary_out(a, b, np.multiply)

    def backward(grad: np.ndarray):
        return (
            unbroadcast(grad * b.data, a.shape),
            unbroadcast(grad * a.data, b.shape),
        )

    return make_op(out, (a, b), backward, "mul", pooled_out=pooled)


def div(a: Tensor, b: Tensor) -> Tensor:
    out = a.data / b.data

    def backward(grad: np.ndarray):
        return (
            unbroadcast(grad / b.data, a.shape),
            unbroadcast(-grad * a.data / (b.data * b.data), b.shape),
        )

    return make_op(out, (a, b), backward, "div")


def neg(a: Tensor) -> Tensor:
    def backward(grad: np.ndarray):
        return (-grad,)

    return make_op(-a.data, (a,), backward, "neg")


def pow_(a: Tensor, exponent: float) -> Tensor:
    """``a ** exponent`` for a constant (non-tensor) exponent."""
    exponent = float(exponent)
    out = a.data**exponent

    def backward(grad: np.ndarray):
        return (grad * exponent * a.data ** (exponent - 1.0),)

    return make_op(out, (a,), backward, "pow")


def exp(a: Tensor) -> Tensor:
    out = np.exp(a.data)

    def backward(grad: np.ndarray):
        return (grad * out,)

    return make_op(out, (a,), backward, "exp")


def log(a: Tensor) -> Tensor:
    out = np.log(a.data)

    def backward(grad: np.ndarray):
        return (grad / a.data,)

    return make_op(out, (a,), backward, "log")


def sqrt(a: Tensor) -> Tensor:
    out = np.sqrt(a.data)

    def backward(grad: np.ndarray):
        return (grad * 0.5 / out,)

    return make_op(out, (a,), backward, "sqrt")


def tanh(a: Tensor) -> Tensor:
    out = np.tanh(a.data)

    def backward(grad: np.ndarray):
        return (grad * (1.0 - out * out),)

    return make_op(out, (a,), backward, "tanh")


def sigmoid(a: Tensor) -> Tensor:
    # Stable two-branch logistic.
    x = a.data
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    ex = np.exp(x[~positive])
    out[~positive] = ex / (1.0 + ex)

    def backward(grad: np.ndarray):
        return (grad * out * (1.0 - out),)

    return make_op(out, (a,), backward, "sigmoid")


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise max; at ties the gradient is split equally (subgradient)."""
    out = np.maximum(a.data, b.data)

    def backward(grad: np.ndarray):
        a_wins = a.data > b.data
        b_wins = b.data > a.data
        tie = ~(a_wins | b_wins)
        grad_a = grad * (a_wins + 0.5 * tie)
        grad_b = grad * (b_wins + 0.5 * tie)
        return unbroadcast(grad_a, a.shape), unbroadcast(grad_b, b.shape)

    return make_op(out, (a, b), backward, "maximum")


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Select from ``a`` where ``condition`` else ``b``; condition is constant."""
    condition = np.asarray(condition, dtype=bool)
    out = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray):
        return (
            unbroadcast(np.where(condition, grad, 0.0), a.shape),
            unbroadcast(np.where(condition, 0.0, grad), b.shape),
        )

    return make_op(out, (a, b), backward, "where")


def round_ste(a: Tensor) -> Tensor:
    """Round with a straight-through gradient (identity backward).

    The forward pass quantises to the nearest integer; the backward pass
    pretends the op is the identity.  This is the standard estimator used by
    quantisation-aware training and by the paper's differentiable
    quantisation paths.
    """
    out = np.round(a.data)

    def backward(grad: np.ndarray):
        return (grad,)

    return make_op(out, (a,), backward, "round_ste")


def quantize_ste(a: Tensor, scale: float, low: float, high: float) -> Tensor:
    """Fused fake-quantisation: clip to ``[low, high]``, snap to the ``scale``
    grid, with straight-through gradients inside the clip range.

    Equivalent to ``round_ste(clip_ste(a, low, high) * (1/scale)) * scale``
    as a single graph node — the STE gradients of the composite collapse to
    ``grad * (low <= a <= high)`` because the scale factors cancel.
    """
    pool = pool_for_op(a)
    if pool is not None:
        # Same clip -> scale -> round -> rescale sequence as the allocating
        # expression below, fused in place into one pooled buffer.
        out = pool.acquire(a.shape, a.data.dtype)
        np.clip(a.data, low, high, out=out)
        out *= 1.0 / scale
        np.round(out, out=out)
        out *= scale
    else:
        out = np.round(np.clip(a.data, low, high) * (1.0 / scale)) * scale

    def backward(grad: np.ndarray):
        inside = (a.data >= low) & (a.data <= high)
        return (grad * inside,)

    return make_op(
        out, (a,), backward, "quantize_ste",
        pooled_out=pool is not None and pool.owns(out),
    )


def clip_ste(a: Tensor, low: float, high: float) -> Tensor:
    """Clip values to ``[low, high]`` passing gradients only inside the range."""
    out = np.clip(a.data, low, high)

    def backward(grad: np.ndarray):
        inside = (a.data >= low) & (a.data <= high)
        return (grad * inside,)

    return make_op(out, (a,), backward, "clip_ste")
