"""Minimal reverse-mode automatic differentiation engine on numpy.

This is the tensor substrate for the whole reproduction: the supernet, the
Gumbel-Softmax samplers, the hardware performance/resource formulas and the
combined EDD loss (Eq. 1) are all expressed as :class:`Tensor` graphs so a
single ``backward()`` produces gradients for DNN weights *and* implementation
variables alike — exactly the property the paper's formulation needs.

Design notes
------------
* Tensors hold numpy arrays in the policy dtype — ``float32`` by default,
  switchable via :func:`set_default_dtype` / the :func:`default_dtype`
  context manager (``float64`` is retained for gradcheck-grade numerics).
  Gradients are dense arrays of the same shape and dtype.
* Each primitive op records its parents and a backward closure; ``backward``
  runs a topological sort.  There is no tape object — the graph *is* the
  tape.
* Broadcasting follows numpy semantics; gradients are summed back to the
  parent shape.
"""

from repro.autograd.tensor import (
    Tensor,
    default_dtype,
    get_default_dtype,
    no_grad,
    set_default_dtype,
    tensor,
)
from repro.autograd.ops_basic import (
    add,
    div,
    exp,
    log,
    maximum,
    mul,
    neg,
    pow_,
    round_ste,
    sigmoid,
    sqrt,
    sub,
    tanh,
    where,
)
from repro.autograd.ops_shape import (
    broadcast_to,
    concat,
    flatten,
    getitem,
    pad2d,
    reshape,
    transpose,
)
from repro.autograd.ops_reduce import logsumexp, max_reduce, mean, sum_reduce
from repro.autograd.ops_nn import (
    avg_pool2d,
    max_pool2d,
    conv2d,
    global_avg_pool2d,
    linear,
    log_softmax,
    matmul,
    relu,
    relu6,
    softmax,
)
from repro.autograd.gradcheck import gradcheck

__all__ = [
    "Tensor",
    "add",
    "default_dtype",
    "get_default_dtype",
    "set_default_dtype",
    "avg_pool2d",
    "broadcast_to",
    "concat",
    "conv2d",
    "div",
    "exp",
    "flatten",
    "getitem",
    "global_avg_pool2d",
    "gradcheck",
    "linear",
    "log",
    "log_softmax",
    "logsumexp",
    "matmul",
    "max_pool2d",
    "max_reduce",
    "maximum",
    "mean",
    "mul",
    "neg",
    "no_grad",
    "pad2d",
    "pow_",
    "relu",
    "relu6",
    "reshape",
    "round_ste",
    "sigmoid",
    "softmax",
    "sqrt",
    "sub",
    "sum_reduce",
    "tanh",
    "tensor",
    "transpose",
    "where",
]
