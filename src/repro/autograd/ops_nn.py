"""Neural-network primitives: matmul, conv2d (grouped/depthwise), pooling,
activations and log-softmax.

``conv2d`` uses a shift-and-accumulate scheme: for each kernel offset the
strided input window is contracted against that kernel slice.  For the small
kernels used by MBConv (3x3/5x5/7x7) this is both simple and fast in numpy,
and the backward pass mirrors the same loop exactly.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor, make_op
from repro.autograd.ops_shape import pad2d


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """2-D matrix product ``a @ b``."""
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(f"matmul expects 2-D tensors, got {a.shape} @ {b.shape}")
    out = a.data @ b.data

    def backward(grad: np.ndarray):
        return grad @ b.data.T, a.data.T @ grad

    return make_op(out, (a, b), backward, "matmul")


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with ``weight`` shaped (out, in)."""
    out = x.data @ weight.data.T
    if bias is not None:
        out = out + bias.data

    if bias is None:

        def backward(grad: np.ndarray):
            return grad @ weight.data, grad.T @ x.data

        return make_op(out, (x, weight), backward, "linear")

    def backward_bias(grad: np.ndarray):
        return grad @ weight.data, grad.T @ x.data, grad.sum(axis=0)

    return make_op(out, (x, weight, bias), backward_bias, "linear")


def _conv_output_size(size: int, kernel: int, stride: int) -> int:
    return (size - kernel) // stride + 1


def conv2d(
    x: Tensor,
    weight: Tensor,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> Tensor:
    """2-D convolution over NCHW input.

    ``weight`` is shaped ``(C_out, C_in // groups, kH, kW)``.  ``groups == 1``
    is a dense convolution; ``groups == C_in`` with a channel multiplier of 1
    is a depthwise convolution (the MBConv middle layer); other group counts
    fall back to a per-group dense loop.
    """
    if x.ndim != 4:
        raise ValueError(f"conv2d expects NCHW input, got shape {x.shape}")
    c_out, c_in_per_group, k_h, k_w = weight.shape
    c_in = x.shape[1]
    if c_in % groups or c_out % groups:
        raise ValueError(
            f"channels ({c_in} in, {c_out} out) not divisible by groups={groups}"
        )
    if c_in_per_group != c_in // groups:
        raise ValueError(
            f"weight expects {c_in_per_group} channels/group but input provides "
            f"{c_in // groups}"
        )

    xp = pad2d(x, padding)
    depthwise = groups == c_in and c_out == c_in
    if depthwise:
        return _depthwise_conv(xp, weight, stride)
    if groups == 1:
        return _dense_conv(xp, weight, stride)
    return _grouped_conv(xp, weight, stride, groups)


def _dense_conv(xp: Tensor, weight: Tensor, stride: int) -> Tensor:
    n, c_in, h, w = xp.shape
    c_out, _, k_h, k_w = weight.shape
    out_h = _conv_output_size(h, k_h, stride)
    out_w = _conv_output_size(w, k_w, stride)
    x_data, w_data = xp.data, weight.data

    out = np.zeros((n, c_out, out_h, out_w))
    for i in range(k_h):
        for j in range(k_w):
            window = x_data[:, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride]
            out += np.einsum("nchw,oc->nohw", window, w_data[:, :, i, j], optimize=True)

    def backward(grad: np.ndarray):
        grad_x = np.zeros_like(x_data)
        grad_w = np.zeros_like(w_data)
        for i in range(k_h):
            for j in range(k_w):
                window = x_data[
                    :, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride
                ]
                grad_w[:, :, i, j] = np.einsum(
                    "nohw,nchw->oc", grad, window, optimize=True
                )
                grad_x[
                    :, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride
                ] += np.einsum("nohw,oc->nchw", grad, w_data[:, :, i, j], optimize=True)
        return grad_x, grad_w

    return make_op(out, (xp, weight), backward, "conv2d")


def _depthwise_conv(xp: Tensor, weight: Tensor, stride: int) -> Tensor:
    n, c, h, w = xp.shape
    _, _, k_h, k_w = weight.shape
    out_h = _conv_output_size(h, k_h, stride)
    out_w = _conv_output_size(w, k_w, stride)
    x_data, w_data = xp.data, weight.data

    out = np.zeros((n, c, out_h, out_w))
    for i in range(k_h):
        for j in range(k_w):
            window = x_data[:, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride]
            out += window * w_data[None, :, 0, i, j, None, None]

    def backward(grad: np.ndarray):
        grad_x = np.zeros_like(x_data)
        grad_w = np.zeros_like(w_data)
        for i in range(k_h):
            for j in range(k_w):
                window = x_data[
                    :, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride
                ]
                grad_w[:, 0, i, j] = (grad * window).sum(axis=(0, 2, 3))
                grad_x[
                    :, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride
                ] += grad * w_data[None, :, 0, i, j, None, None]
        return grad_x, grad_w

    return make_op(out, (xp, weight), backward, "dwconv2d")


def _grouped_conv(xp: Tensor, weight: Tensor, stride: int, groups: int) -> Tensor:
    n, c_in, h, w = xp.shape
    c_out, c_in_g, k_h, k_w = weight.shape
    c_out_g = c_out // groups
    out_h = _conv_output_size(h, k_h, stride)
    out_w = _conv_output_size(w, k_w, stride)
    x_data, w_data = xp.data, weight.data

    out = np.zeros((n, c_out, out_h, out_w))
    for g in range(groups):
        xs = x_data[:, g * c_in_g : (g + 1) * c_in_g]
        ws = w_data[g * c_out_g : (g + 1) * c_out_g]
        acc = out[:, g * c_out_g : (g + 1) * c_out_g]
        for i in range(k_h):
            for j in range(k_w):
                window = xs[:, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride]
                acc += np.einsum("nchw,oc->nohw", window, ws[:, :, i, j], optimize=True)

    def backward(grad: np.ndarray):
        grad_x = np.zeros_like(x_data)
        grad_w = np.zeros_like(w_data)
        for g in range(groups):
            xs = x_data[:, g * c_in_g : (g + 1) * c_in_g]
            ws = w_data[g * c_out_g : (g + 1) * c_out_g]
            gs = grad[:, g * c_out_g : (g + 1) * c_out_g]
            gxs = grad_x[:, g * c_in_g : (g + 1) * c_in_g]
            gws = grad_w[g * c_out_g : (g + 1) * c_out_g]
            for i in range(k_h):
                for j in range(k_w):
                    window = xs[
                        :, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride
                    ]
                    gws[:, :, i, j] = np.einsum("nohw,nchw->oc", gs, window, optimize=True)
                    gxs[
                        :, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride
                    ] += np.einsum("nohw,oc->nchw", gs, ws[:, :, i, j], optimize=True)
        return grad_x, grad_w

    return make_op(out, (xp, weight), backward, "gconv2d")


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None, padding: int = 0) -> Tensor:
    """Max pooling with arbitrary kernel/stride/padding (supports overlap).

    Forward: shift-and-maximum over the kernel offsets.  Backward: the
    gradient goes to the first window position attaining the maximum (ties
    are not split — matching common framework semantics closely enough for
    training).
    """
    if stride is None:
        stride = kernel
    n, c, h, w = x.shape
    ph, pw = h + 2 * padding, w + 2 * padding
    out_h = (ph - kernel) // stride + 1
    out_w = (pw - kernel) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ValueError(
            f"max_pool2d: kernel {kernel} too large for input {h}x{w} "
            f"with padding {padding}"
        )
    padded = np.full((n, c, ph, pw), -np.inf)
    padded[:, :, padding:padding + h, padding:padding + w] = x.data

    out = np.full((n, c, out_h, out_w), -np.inf)
    for i in range(kernel):
        for j in range(kernel):
            window = padded[:, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride]
            np.maximum(out, window, out=out)

    def backward(grad: np.ndarray):
        grad_padded = np.zeros_like(padded)
        assigned = np.zeros(out.shape, dtype=bool)
        for i in range(kernel):
            for j in range(kernel):
                window = padded[
                    :, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride
                ]
                winners = (window == out) & ~assigned
                assigned |= winners
                grad_padded[
                    :, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride
                ] += grad * winners
        return (grad_padded[:, :, padding:padding + h, padding:padding + w],)

    return make_op(out, (x,), backward, "max_pool2d")


def avg_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Non-overlapping average pooling (kernel == stride).

    Spatial dims must be divisible by ``kernel``; reshaping makes both the
    forward and the backward a pure view operation.
    """
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims ({h},{w}) not divisible by kernel {kernel}")
    out_h, out_w = h // kernel, w // kernel
    reshaped = x.data.reshape(n, c, out_h, kernel, out_w, kernel)
    out = reshaped.mean(axis=(3, 5))
    scale = 1.0 / (kernel * kernel)

    def backward(grad: np.ndarray):
        expanded = np.repeat(np.repeat(grad, kernel, axis=2), kernel, axis=3)
        return (expanded * scale,)

    return make_op(out, (x,), backward, "avg_pool2d")


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the spatial axes, returning (N, C)."""
    n, c, h, w = x.shape
    out = x.data.mean(axis=(2, 3))
    scale = 1.0 / (h * w)

    def backward(grad: np.ndarray):
        return (np.broadcast_to(grad[:, :, None, None], x.shape).copy() * scale,)

    return make_op(out, (x,), backward, "global_avg_pool2d")


def relu(x: Tensor) -> Tensor:
    out = np.maximum(x.data, 0.0)

    def backward(grad: np.ndarray):
        return (grad * (x.data > 0),)

    return make_op(out, (x,), backward, "relu")


def relu6(x: Tensor) -> Tensor:
    """The MobileNet activation: ``min(max(x, 0), 6)``."""
    out = np.clip(x.data, 0.0, 6.0)

    def backward(grad: np.ndarray):
        return (grad * ((x.data > 0) & (x.data < 6)),)

    return make_op(out, (x,), backward, "relu6")


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shift = x.data.max(axis=axis, keepdims=True)
    shifted = x.data - shift
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_norm
    softmax_vals = np.exp(out)

    def backward(grad: np.ndarray):
        return (grad - softmax_vals * grad.sum(axis=axis, keepdims=True),)

    return make_op(out, (x,), backward, "log_softmax")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shift = x.data.max(axis=axis, keepdims=True)
    exp = np.exp(x.data - shift)
    out = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray):
        inner = (grad * out).sum(axis=axis, keepdims=True)
        return (out * (grad - inner),)

    return make_op(out, (x,), backward, "softmax")
