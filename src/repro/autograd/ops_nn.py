"""Neural-network primitives: matmul, conv2d (grouped/depthwise), pooling,
activations and log-softmax.

``conv2d`` is formulated on im2col/col2im: a stride-tricks window view of the
input is reshaped into a column matrix and contracted against the flattened
kernel with **one batched matmul** per convolution — no Python loops over
kernel offsets or groups.  Dense, depthwise and grouped convolutions all run
the same path (a depthwise conv is just ``groups == channels``).  The
backward pass is two more matmuls: the weight gradient contracts the saved
columns against the output gradient, and the input gradient is the standard
transposed convolution (stride-dilated output gradient, full padding,
spatially-flipped kernel) expressed through the same im2col helper.

The original shift-and-accumulate implementation is retained as
:func:`_reference_conv2d` — a slow, independently-written oracle used by the
equivalence tests and the ``repro bench`` baseline measurements.
"""

from __future__ import annotations

import os
from collections.abc import Sequence

import numpy as np

from repro.autograd.pool import get_pool
from repro.autograd.tensor import Tensor, make_op, pool_for_op
from repro.autograd.ops_shape import pad2d


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """2-D matrix product ``a @ b``."""
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(f"matmul expects 2-D tensors, got {a.shape} @ {b.shape}")
    out = a.data @ b.data

    def backward(grad: np.ndarray):
        return grad @ b.data.T, a.data.T @ grad

    return make_op(out, (a, b), backward, "matmul")


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with ``weight`` shaped (out, in)."""
    out = x.data @ weight.data.T
    if bias is not None:
        out = out + bias.data

    if bias is None:

        def backward(grad: np.ndarray):
            return grad @ weight.data, grad.T @ x.data

        return make_op(out, (x, weight), backward, "linear")

    def backward_bias(grad: np.ndarray):
        return grad @ weight.data, grad.T @ x.data, grad.sum(axis=0)

    return make_op(out, (x, weight, bias), backward_bias, "linear")


def _conv_output_size(size: int, kernel: int, stride: int) -> int:
    return (size - kernel) // stride + 1


# -- im2col machinery ---------------------------------------------------------

def _window_view(x: np.ndarray, k_h: int, k_w: int, stride: int) -> np.ndarray:
    """Read-only sliding-window view of NCHW ``x``: (N, C, kH, kW, oH, oW)."""
    n, c, h, w = x.shape
    out_h = _conv_output_size(h, k_h, stride)
    out_w = _conv_output_size(w, k_w, stride)
    s_n, s_c, s_h, s_w = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, k_h, k_w, out_h, out_w),
        strides=(s_n, s_c, s_h, s_w, s_h * stride, s_w * stride),
        writeable=False,
    )


def _im2col(
    x: np.ndarray, k_h: int, k_w: int, stride: int, groups: int,
    out: np.ndarray | None = None,
) -> tuple[np.ndarray, int, int]:
    """Column matrix (N, G, C_g*kH*kW, oH*oW) of ``x`` plus output dims.

    For 1x1 kernels at stride 1 (the MBConv expand/project hot path) the
    reshape is a zero-copy view of a contiguous input.  ``out`` optionally
    receives the materialised columns (shape ``(N, C, kH, kW, oH, oW)``,
    typically a pooled scratch buffer) instead of a fresh allocation.
    """
    n, c, _, _ = x.shape
    view = _window_view(x, k_h, k_w, stride)
    out_h, out_w = view.shape[4], view.shape[5]
    if out is not None:
        np.copyto(out, view)
        view = out
    cols = view.reshape(n, groups, (c // groups) * k_h * k_w, out_h * out_w)
    return cols, out_h, out_w


def _flipped_weight_t(
    w_data: np.ndarray, groups: int
) -> tuple[np.ndarray, np.ndarray]:
    """Spatially-flipped, channel-transposed kernel views for input grads.

    Returns the flipped 5-D view ``(G, C_out_g, C_in_g, kH, kW)`` and its
    contiguous transpose reshaped to ``(G, C_in_g, C_out_g*kH*kW)`` — the
    left operand of the transposed-convolution GEMM.
    """
    c_out, c_in_g, k_h, k_w = w_data.shape
    c_out_g = c_out // groups
    flipped = w_data.reshape(groups, c_out_g, c_in_g, k_h, k_w)[:, :, :, ::-1, ::-1]
    w_t = np.ascontiguousarray(flipped.transpose(0, 2, 1, 3, 4)).reshape(
        groups, c_in_g, c_out_g * k_h * k_w
    )
    return flipped, w_t


def _conv_input_grad_dilated(
    grad: np.ndarray,
    w_data: np.ndarray,
    x_shape: tuple[int, ...],
    stride: int,
    groups: int,
) -> np.ndarray:
    """Input gradient as one full correlation of the stride-dilated output
    gradient with the flipped kernel (im2col + one batched matmul).

    This is the pre-phase-decomposition formulation, kept as the oracle for
    the equivalence tests and the training bench: for ``stride > 1`` the
    dilated canvas is mostly zeros, so the single big GEMM does ``stride²``
    more multiplies than the non-zero structure requires.
    :func:`_conv_input_grad` dispatches to it only for ``stride == 1``.
    """
    n, c_in, h, w = x_shape
    c_out, c_in_g, k_h, k_w = w_data.shape
    out_h, out_w = grad.shape[2], grad.shape[3]
    pool = get_pool()

    if k_h == 1 and k_w == 1 and stride == 1:
        padded = grad  # 1x1/s1: the dilate+pad stage is the identity
        pad_scratch = None
    else:
        # One canvas fuses stride-dilation, full padding and the trailing
        # slack for input pixels the kernel never reached (zero gradient
        # there when (H - kH) % stride != 0): the dilated gradient lands at
        # positions (kH-1) + i*stride of an (H + kH - 1)-tall canvas.
        zero_all = stride > 1  # dilation leaves zero gaps between rows
        pad_scratch = pool.acquire(
            (n, c_out, h + k_h - 1, w + k_w - 1), grad.dtype, zero=zero_all
        )
        if not zero_all:
            # Stride 1: the interior is fully overwritten below, so only
            # the full-padding border of a recycled buffer needs zeroing.
            if k_h > 1:
                pad_scratch[:, :, : k_h - 1, :] = 0.0
                pad_scratch[:, :, k_h - 1 + out_h :, :] = 0.0
            if k_w > 1:
                rows = slice(k_h - 1, k_h - 1 + out_h)
                pad_scratch[:, :, rows, : k_w - 1] = 0.0
                pad_scratch[:, :, rows, k_w - 1 + out_w :] = 0.0
        pad_scratch[
            :,
            :,
            k_h - 1 : k_h - 1 + (out_h - 1) * stride + 1 : stride,
            k_w - 1 : k_w - 1 + (out_w - 1) * stride + 1 : stride,
        ] = grad
        padded = pad_scratch

    _, w_t = _flipped_weight_t(w_data, groups)
    col_scratch = None
    if not (k_h == 1 and k_w == 1):
        col_scratch = pool.acquire((n, c_out, k_h, k_w, h, w), grad.dtype)
    cols, gh, gw = _im2col(padded, k_h, k_w, 1, groups, out=col_scratch)
    assert (gh, gw) == (h, w)
    grad_x = np.matmul(w_t[None], cols).reshape(n, c_in, h, w)
    if col_scratch is not None:
        pool.release(col_scratch)
    if pad_scratch is not None:
        pool.release(pad_scratch)
    return grad_x


def _conv_input_grad_phased(
    grad: np.ndarray,
    w_data: np.ndarray,
    x_shape: tuple[int, ...],
    stride: int,
    groups: int,
) -> np.ndarray:
    """Phase-decomposed transposed-convolution input gradient (stride > 1).

    The stride-dilated full correlation touches a canvas in which only one
    position in ``stride²`` is non-zero.  Input row ``y`` only ever reads
    kernel taps ``d`` with ``d ≡ (kH-1-y) (mod s)``, so the correlation
    splits exactly into ``s²`` *dense* sub-correlations — one per input
    phase ``(y mod s, x mod s)`` — each contracting the **undilated** output
    gradient against the sub-kernel ``flipped[d0::s, d0'::s]``.  Total
    multiply count drops by ``s²`` versus the dilated oracle
    (:func:`_conv_input_grad_dilated`); results are bit-identical in exact
    arithmetic and gradcheck-identical in float64 (see
    ``tests/test_ops_conv_equivalence.py``).

    Phases whose sub-kernel is empty (``stride > kH`` cases) or that index
    past the input (``h < stride``) stay zero, which also covers the
    ``(H - kH) % stride != 0`` trailing rows the kernel never reached.
    """
    n, c_in, h, w = x_shape
    c_out, c_in_g, k_h, k_w = w_data.shape
    c_out_g = c_out // groups
    out_h, out_w = grad.shape[2], grad.shape[3]
    pool = get_pool()
    grad_x = np.zeros((n, c_in, h, w), dtype=grad.dtype)
    # Only the flipped *view* is needed here — each phase builds its own
    # contiguous sub-kernel below, so the full transposed copy the dilated
    # path uses (_flipped_weight_t's second return) would be wasted work.
    flipped = w_data.reshape(groups, c_out_g, c_in_g, k_h, k_w)[:, :, :, ::-1, ::-1]

    for ph in range(stride):
        t_h = len(range(ph, h, stride))
        d0_h = (k_h - 1 - ph) % stride
        ks_h = len(range(d0_h, k_h, stride))
        # Canvas row v maps to output row v + delta (delta <= 0): the
        # sub-correlation reads grad rows t+delta .. t+delta+ksH-1.
        delta_h = (ph + d0_h - (k_h - 1)) // stride
        if t_h == 0 or ks_h == 0:
            continue
        for pw in range(stride):
            t_w = len(range(pw, w, stride))
            d0_w = (k_w - 1 - pw) % stride
            ks_w = len(range(d0_w, k_w, stride))
            delta_w = (pw + d0_w - (k_w - 1)) // stride
            if t_w == 0 or ks_w == 0:
                continue
            canvas_h = t_h + ks_h - 1
            canvas_w = t_w + ks_w - 1
            canvas = pool.acquire(
                (n, c_out, canvas_h, canvas_w), grad.dtype, zero=True
            )
            # Copy the grad window the sub-correlation can actually read
            # (canvas row v holds grad row v + delta); the rest of the
            # canvas stays zero padding.
            dst_h_lo, dst_h_hi = -delta_h, min(canvas_h, out_h - delta_h)
            dst_w_lo, dst_w_hi = -delta_w, min(canvas_w, out_w - delta_w)
            if dst_h_hi > dst_h_lo and dst_w_hi > dst_w_lo:
                canvas[:, :, dst_h_lo:dst_h_hi, dst_w_lo:dst_w_hi] = grad[
                    :, :, : dst_h_hi + delta_h, : dst_w_hi + delta_w
                ]
            w_sub = np.ascontiguousarray(
                flipped[:, :, :, d0_h::stride, d0_w::stride].transpose(0, 2, 1, 3, 4)
            ).reshape(groups, c_in_g, c_out_g * ks_h * ks_w)
            col_scratch = (
                None
                if ks_h == 1 and ks_w == 1
                else pool.acquire(
                    (n, c_out, ks_h, ks_w, t_h, t_w), grad.dtype
                )
            )
            cols, gh, gw = _im2col(canvas, ks_h, ks_w, 1, groups, out=col_scratch)
            assert (gh, gw) == (t_h, t_w)
            grad_x[:, :, ph::stride, pw::stride] = np.matmul(
                w_sub[None], cols
            ).reshape(n, c_in, t_h, t_w)
            if col_scratch is not None:
                pool.release(col_scratch)
            pool.release(canvas)
    return grad_x


#: Below this many dilated-canvas column elements (``N*C_out*kH*kW*H*W``)
#: the stride²-redundant single GEMM is still cheaper than the phase
#: decomposition's s² python-level sub-correlations — dispatch accordingly.
_PHASED_MIN_ELEMS = 256_000


def _conv_input_grad(
    grad: np.ndarray,
    w_data: np.ndarray,
    x_shape: tuple[int, ...],
    stride: int,
    groups: int,
) -> np.ndarray:
    """Input gradient of a convolution (transposed convolution).

    ``stride == 1`` runs the dense full correlation directly.  ``stride > 1``
    uses the phase decomposition — the same arithmetic without the
    ``stride²`` multiply-by-zero overhead of a dilated canvas — unless the
    problem is so small that the s² python-level sub-correlations cost more
    than the redundant flops they avoid (:data:`_PHASED_MIN_ELEMS`).
    """
    if stride == 1:
        return _conv_input_grad_dilated(grad, w_data, x_shape, stride, groups)
    n, _, h, w = x_shape
    c_out, _, k_h, k_w = w_data.shape
    if n * c_out * k_h * k_w * h * w < _PHASED_MIN_ELEMS:
        return _conv_input_grad_dilated(grad, w_data, x_shape, stride, groups)
    return _conv_input_grad_phased(grad, w_data, x_shape, stride, groups)


# Materialized column matrices above this size are processed in batch chunks:
# allocations past glibc's mmap threshold cap (32 MiB) page-fault on every
# conv, which costs far more than the extra python iterations of cache
# blocking.  Below the cap the allocator recycles the buffers, so capturing
# the columns for the backward is cheaper than recomputing them.
_COL_CHUNK_BYTES = 24 << 20


def _im2col_conv(xp: Tensor, weight: Tensor, stride: int, groups: int,
                 op_name: str) -> Tensor:
    """Shared forward/backward for every conv flavour (already-padded input)."""
    x_data, w_data = xp.data, weight.data
    n = x_data.shape[0]
    c_out, c_in_g, k_h, k_w = w_data.shape
    c_out_g = c_out // groups
    col_len = c_in_g * k_h * k_w
    w_mat = w_data.reshape(groups, c_out_g, col_len)

    # A 1x1/s1 column matrix is a zero-copy view; otherwise im2col blows the
    # input up kH*kW-fold, so big batches are blocked along N (vectorization
    # over kernel offsets and groups is untouched) and the backward
    # recomputes its column chunks instead of retaining them in the graph.
    view_only = k_h == 1 and k_w == 1 and stride == 1
    per_sample_bytes = (
        x_data.shape[1] * k_h * k_w
        * _conv_output_size(x_data.shape[2], k_h, stride)
        * _conv_output_size(x_data.shape[3], k_w, stride)
        * x_data.itemsize
    )
    # The closure contract allows returning None per parent: skip the input
    # gradient entirely when the input is graph-external (e.g. the stem conv
    # consuming the data batch) — that's the priciest half of the backward.
    need_input_grad = xp.requires_grad or xp.backward_fn is not None

    pool = pool_for_op(xp, weight)
    if view_only or n * per_sample_bytes <= _COL_CHUNK_BYTES:
        if pool is not None:
            # Pooled hot path: route the forward through the out-buffer
            # inference kernel (conv2d_into) so the output and the
            # materialised columns are checked out of the BufferPool;
            # backward retires them via the tape.
            out_h = _conv_output_size(x_data.shape[2], k_h, stride)
            out_w = _conv_output_size(x_data.shape[3], k_w, stride)
            out = pool.acquire((n, c_out, out_h, out_w), x_data.dtype)
            retire: tuple[np.ndarray, ...] = ()
            if view_only:
                cols = x_data.reshape(n, groups, col_len, out_h * out_w)
                conv2d_into(
                    x_data, w_data, stride=stride, groups=groups, out=out
                )
            else:
                col6 = pool.acquire(
                    (n, x_data.shape[1], k_h, k_w, out_h, out_w), x_data.dtype
                )
                conv2d_into(
                    x_data, w_data, stride=stride, groups=groups, out=out,
                    cols=col6,
                )
                cols = col6.reshape(n, groups, col_len, out_h * out_w)
                retire = (col6,)
        else:
            cols, out_h, out_w = _im2col(x_data, k_h, k_w, stride, groups)
            out = np.matmul(w_mat[None], cols).reshape(n, c_out, out_h, out_w)
            retire = ()

        def backward(grad: np.ndarray):
            g = grad.reshape(n, groups, c_out_g, out_h * out_w)
            # dW: per-sample batched GEMM against the transposed-view columns
            # (BLAS consumes the transpose directly), reduced over the batch,
            # with the per-sample product in call-scoped pooled scratch.
            bpool = get_pool()
            gw_scratch = bpool.acquire((n, groups, c_out_g, col_len), grad.dtype)
            np.matmul(g, cols.transpose(0, 1, 3, 2), out=gw_scratch)
            grad_w = gw_scratch.sum(axis=0).reshape(w_data.shape)
            bpool.release(gw_scratch)
            grad_x = (
                _conv_input_grad(grad, w_data, x_data.shape, stride, groups)
                if need_input_grad
                else None
            )
            return grad_x, grad_w

        return make_op(
            out, (xp, weight), backward, op_name,
            retire=retire, pooled_out=pool is not None and pool.owns(out),
        )

    step = max(1, int(_COL_CHUNK_BYTES // per_sample_bytes))
    out_h = _conv_output_size(x_data.shape[2], k_h, stride)
    out_w = _conv_output_size(x_data.shape[3], k_w, stride)
    out = (
        pool.acquire((n, c_out, out_h, out_w), x_data.dtype)
        if pool is not None
        else np.empty((n, c_out, out_h, out_w), dtype=x_data.dtype)
    )
    for start in range(0, n, step):
        chunk = x_data[start : start + step]
        col6 = get_pool().acquire(
            (chunk.shape[0], chunk.shape[1], k_h, k_w, out_h, out_w),
            x_data.dtype,
        )
        cols, _, _ = _im2col(chunk, k_h, k_w, stride, groups, out=col6)
        np.matmul(
            w_mat[None], cols,
            out=out[start : start + step].reshape(
                chunk.shape[0], groups, c_out_g, out_h * out_w
            ),
        )
        get_pool().release(col6)

    def backward_chunked(grad: np.ndarray):
        bpool = get_pool()
        grad_w = np.zeros((groups, c_out_g, col_len), dtype=w_data.dtype)
        grad_x = (
            np.empty(x_data.shape, dtype=x_data.dtype) if need_input_grad else None
        )
        for start in range(0, n, step):
            sl = slice(start, start + step)
            chunk = x_data[sl]
            m = chunk.shape[0]
            col6 = bpool.acquire(
                (m, chunk.shape[1], k_h, k_w, out_h, out_w), x_data.dtype
            )
            cols, _, _ = _im2col(chunk, k_h, k_w, stride, groups, out=col6)
            g = grad[sl].reshape(m, groups, c_out_g, out_h * out_w)
            gw_scratch = bpool.acquire((m, groups, c_out_g, col_len), grad.dtype)
            np.matmul(g, cols.transpose(0, 1, 3, 2), out=gw_scratch)
            grad_w += gw_scratch.sum(axis=0)
            bpool.release(gw_scratch)
            bpool.release(col6)
            if grad_x is not None:
                grad_x[sl] = _conv_input_grad(
                    grad[sl], w_data, chunk.shape, stride, groups
                )
        return grad_x, grad_w.reshape(w_data.shape)

    return make_op(
        out, (xp, weight), backward_chunked, op_name,
        pooled_out=pool is not None and pool.owns(out),
    )


#: Below this much tap work (``N*C*oH*oW*kH*kW`` multiply-accumulates) the
#: direct depthwise kernel's 2*k² python-level tap operations cost more than
#: the im2col GEMM overhead they avoid — dispatch accordingly (tests pin it
#: to 0 to force the direct path at unit-test sizes).
_DW_DIRECT_MIN_ELEMS = 100_000

#: Environment kill-switch: ``REPRO_DW_DIRECT=0`` pins every depthwise
#: convolution to the im2col path (mirrors ``REPRO_BATCHED_SOFT`` /
#: ``REPRO_BUFFER_POOL``; the search bench uses it to time the pre-kernel
#: baseline).
DW_DIRECT_ENV = "REPRO_DW_DIRECT"


def dw_direct_enabled() -> bool:
    """Whether the direct depthwise kernel may be dispatched (default on)."""
    return os.environ.get(DW_DIRECT_ENV, "1") != "0"


def _depthwise_direct(xp: Tensor, weight: Tensor, op_name: str) -> Tensor:
    """Direct depthwise convolution (stride 1, already-padded input).

    The im2col formulation turns a depthwise stage into ``C`` batched
    (1, k²) x (k², oH*oW) GEMMs — BLAS at its worst shape — after paying a
    k²-fold column materialisation (and, past :data:`_COL_CHUNK_BYTES`, a
    second one to recompute the columns in the backward).  Per-op profiling
    of soft supernet steps at paper widths puts that ``dwconv2d`` backward
    at ~80% of total step time.  This node instead contracts a zero-copy
    sliding-window view directly:

    * forward: ``einsum('ncijhw,cij->nchw')`` over :func:`_window_view`;
    * weight grad: ``einsum('ncijhw,nchw->cij')`` over the same view (no
      column matrix ever materialises, so nothing is recomputed);
    * input grad: k² shift-accumulate taps
      ``gx[:, :, i:i+oH, j:j+oW] += g * w[:, i, j]`` — cheaper than an
      einsum over the padded-gradient window because the output gradient is
      smaller than the padded input.

    Measured ~2x faster than the im2col path for k in {5, 7} at search
    widths; k == 3 and strided cases stay on im2col
    (:func:`conv2d` dispatches only profitable shapes here).
    """
    x_data, w_data = xp.data, weight.data
    n, c, _, _ = x_data.shape
    k = w_data.shape[2]
    win = _window_view(x_data, k, k, 1)
    out_h, out_w = win.shape[4], win.shape[5]
    w2 = w_data.reshape(c, k, k)
    pool = pool_for_op(xp, weight)
    out = (
        pool.acquire((n, c, out_h, out_w), x_data.dtype)
        if pool is not None
        else np.empty((n, c, out_h, out_w), dtype=x_data.dtype)
    )
    np.einsum("ncijhw,cij->nchw", win, w2, out=out)
    need_input_grad = xp.requires_grad or xp.backward_fn is not None

    def backward(grad: np.ndarray):
        grad_w = np.einsum("ncijhw,nchw->cij", win, grad).reshape(w_data.shape)
        if not need_input_grad:
            return None, grad_w
        grad_x = np.zeros(x_data.shape, dtype=grad.dtype)
        bpool = get_pool()
        scratch = bpool.acquire((n, c, out_h, out_w), grad.dtype)
        for i in range(k):
            for j in range(k):
                np.multiply(grad, w2[:, i, j][None, :, None, None], out=scratch)
                grad_x[:, :, i : i + out_h, j : j + out_w] += scratch
        bpool.release(scratch)
        return grad_x, grad_w

    return make_op(
        out, (xp, weight), backward, op_name,
        pooled_out=pool is not None and pool.owns(out),
    )


def conv2d(
    x: Tensor,
    weight: Tensor,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> Tensor:
    """2-D convolution over NCHW input.

    ``weight`` is shaped ``(C_out, C_in // groups, kH, kW)``.  ``groups == 1``
    is a dense convolution; ``groups == C_in`` with a channel multiplier of 1
    is a depthwise convolution (the MBConv middle layer).  All group counts
    share one im2col + batched-matmul path.
    """
    if x.ndim != 4:
        raise ValueError(f"conv2d expects NCHW input, got shape {x.shape}")
    c_out, c_in_per_group, k_h, k_w = weight.shape
    c_in = x.shape[1]
    if c_in % groups or c_out % groups:
        raise ValueError(
            f"channels ({c_in} in, {c_out} out) not divisible by groups={groups}"
        )
    if c_in_per_group != c_in // groups:
        raise ValueError(
            f"weight expects {c_in_per_group} channels/group but input provides "
            f"{c_in // groups}"
        )

    xp = pad2d(x, padding)
    if groups == 1:
        op_name = "conv2d"
    elif groups == c_in and c_out == c_in:
        op_name = "dwconv2d"
        # Direct-kernel dispatch (see _depthwise_direct): stride-1 square
        # kernels of 5+ taps at sizes where the im2col GEMM is the
        # bottleneck rather than the python-level tap loop.
        if (
            stride == 1
            and k_h == k_w
            and k_h >= 5
            and dw_direct_enabled()
            and x.shape[0] * c_in * k_h * k_w
            * _conv_output_size(x.shape[2] + 2 * padding, k_h, stride)
            * _conv_output_size(x.shape[3] + 2 * padding, k_w, stride)
            >= _DW_DIRECT_MIN_ELEMS
        ):
            return _depthwise_direct(xp, weight, op_name)
    else:
        op_name = "gconv2d"
    return _im2col_conv(xp, weight, stride, groups, op_name)


def _reference_pad2d(a: Tensor, padding: int) -> Tensor:
    """The pre-refactor ``pad2d`` (np.pad-based), kept for the oracle path."""
    if padding == 0:
        return a
    widths = [(0, 0)] * (a.ndim - 2) + [(padding, padding), (padding, padding)]
    out = np.pad(a.data, widths)
    h, w = a.shape[-2], a.shape[-1]

    def backward(grad: np.ndarray):
        sl = [slice(None)] * (a.ndim - 2) + [
            slice(padding, padding + h),
            slice(padding, padding + w),
        ]
        return (grad[tuple(sl)],)

    return make_op(out, (a,), backward, "pad2d")


def _reference_conv2d(
    x: Tensor,
    weight: Tensor,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> Tensor:
    """The pre-im2col shift-and-accumulate convolution (slow, loop-based).

    This is the original implementation, kept verbatim — including its
    dense/depthwise/grouped dispatch — as an independently-written oracle:
    the equivalence tests check the vectorized kernels against it across
    strides/groups/odd shapes, and ``repro bench`` uses it (under a float64
    policy) as the faithful before-refactor baseline.  Semantics match
    :func:`conv2d` exactly (same signature, same backward contract).
    """
    if x.ndim != 4:
        raise ValueError(f"conv2d expects NCHW input, got shape {x.shape}")
    c_out, c_in_per_group, k_h, k_w = weight.shape
    c_in = x.shape[1]
    if c_in % groups or c_out % groups:
        raise ValueError(
            f"channels ({c_in} in, {c_out} out) not divisible by groups={groups}"
        )
    if c_in_per_group != c_in // groups:
        raise ValueError(
            f"weight expects {c_in_per_group} channels/group but input provides "
            f"{c_in // groups}"
        )

    xp = _reference_pad2d(x, padding)
    depthwise = groups == c_in and c_out == c_in
    if depthwise:
        return _reference_depthwise_conv(xp, weight, stride)
    if groups == 1:
        return _reference_dense_conv(xp, weight, stride)
    return _reference_grouped_conv(xp, weight, stride, groups)


def _reference_dense_conv(xp: Tensor, weight: Tensor, stride: int) -> Tensor:
    n, c_in, h, w = xp.shape
    c_out, _, k_h, k_w = weight.shape
    out_h = _conv_output_size(h, k_h, stride)
    out_w = _conv_output_size(w, k_w, stride)
    x_data, w_data = xp.data, weight.data

    out = np.zeros((n, c_out, out_h, out_w), dtype=x_data.dtype)
    for i in range(k_h):
        for j in range(k_w):
            window = x_data[:, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride]
            out += np.einsum("nchw,oc->nohw", window, w_data[:, :, i, j], optimize=True)

    def backward(grad: np.ndarray):
        grad_x = np.zeros_like(x_data)
        grad_w = np.zeros_like(w_data)
        for i in range(k_h):
            for j in range(k_w):
                window = x_data[
                    :, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride
                ]
                grad_w[:, :, i, j] = np.einsum(
                    "nohw,nchw->oc", grad, window, optimize=True
                )
                grad_x[
                    :, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride
                ] += np.einsum("nohw,oc->nchw", grad, w_data[:, :, i, j], optimize=True)
        return grad_x, grad_w

    return make_op(out, (xp, weight), backward, "reference_conv2d")


def _reference_depthwise_conv(xp: Tensor, weight: Tensor, stride: int) -> Tensor:
    n, c, h, w = xp.shape
    _, _, k_h, k_w = weight.shape
    out_h = _conv_output_size(h, k_h, stride)
    out_w = _conv_output_size(w, k_w, stride)
    x_data, w_data = xp.data, weight.data

    out = np.zeros((n, c, out_h, out_w), dtype=x_data.dtype)
    for i in range(k_h):
        for j in range(k_w):
            window = x_data[:, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride]
            out += window * w_data[None, :, 0, i, j, None, None]

    def backward(grad: np.ndarray):
        grad_x = np.zeros_like(x_data)
        grad_w = np.zeros_like(w_data)
        for i in range(k_h):
            for j in range(k_w):
                window = x_data[
                    :, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride
                ]
                grad_w[:, 0, i, j] = (grad * window).sum(axis=(0, 2, 3))
                grad_x[
                    :, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride
                ] += grad * w_data[None, :, 0, i, j, None, None]
        return grad_x, grad_w

    return make_op(out, (xp, weight), backward, "reference_dwconv2d")


def _reference_grouped_conv(xp: Tensor, weight: Tensor, stride: int, groups: int) -> Tensor:
    n, c_in, h, w = xp.shape
    c_out, c_in_g, k_h, k_w = weight.shape
    c_out_g = c_out // groups
    out_h = _conv_output_size(h, k_h, stride)
    out_w = _conv_output_size(w, k_w, stride)
    x_data, w_data = xp.data, weight.data

    out = np.zeros((n, c_out, out_h, out_w), dtype=x_data.dtype)
    for g in range(groups):
        xs = x_data[:, g * c_in_g : (g + 1) * c_in_g]
        ws = w_data[g * c_out_g : (g + 1) * c_out_g]
        acc = out[:, g * c_out_g : (g + 1) * c_out_g]
        for i in range(k_h):
            for j in range(k_w):
                window = xs[:, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride]
                acc += np.einsum("nchw,oc->nohw", window, ws[:, :, i, j], optimize=True)

    def backward(grad: np.ndarray):
        grad_x = np.zeros_like(x_data)
        grad_w = np.zeros_like(w_data)
        for g in range(groups):
            xs = x_data[:, g * c_in_g : (g + 1) * c_in_g]
            ws = w_data[g * c_out_g : (g + 1) * c_out_g]
            gs = grad[:, g * c_out_g : (g + 1) * c_out_g]
            gxs = grad_x[:, g * c_in_g : (g + 1) * c_in_g]
            gws = grad_w[g * c_out_g : (g + 1) * c_out_g]
            for i in range(k_h):
                for j in range(k_w):
                    window = xs[
                        :, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride
                    ]
                    gws[:, :, i, j] = np.einsum("nohw,nchw->oc", gs, window, optimize=True)
                    gxs[
                        :, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride
                    ] += np.einsum("nohw,oc->nchw", gs, ws[:, :, i, j], optimize=True)
        return grad_x, grad_w

    return make_op(out, (xp, weight), backward, "reference_gconv2d")


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None, padding: int = 0) -> Tensor:
    """Max pooling with arbitrary kernel/stride/padding (supports overlap).

    Forward: im2col window view, maximum over the kernel axis.  Backward: the
    gradient goes to the first window position attaining the maximum in
    row-major kernel order (ties are not split — matching common framework
    semantics closely enough for training).  For the common non-overlapping
    case (``stride >= kernel``) every input position belongs to at most one
    window, so the scatter is a plain flat-index assignment; only overlapping
    windows (``stride < kernel``) need ``np.add.at``'s unbuffered accumulate,
    which is an order of magnitude slower on large pools.
    """
    if stride is None:
        stride = kernel
    n, c, h, w = x.shape
    ph, pw = h + 2 * padding, w + 2 * padding
    out_h = (ph - kernel) // stride + 1
    out_w = (pw - kernel) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ValueError(
            f"max_pool2d: kernel {kernel} too large for input {h}x{w} "
            f"with padding {padding}"
        )
    padded = np.full((n, c, ph, pw), -np.inf, dtype=x.data.dtype)
    padded[:, :, padding:padding + h, padding:padding + w] = x.data

    # (N, C, k, k, oH, oW) -> (N, C, oH, oW, k*k); the flattened kernel axis
    # is in row-major (i, j) order so argmax picks the same winner as the old
    # shift-and-accumulate loop did.  Only the small winner-index array is
    # captured for the backward — the k^2-expanded columns are dropped here.
    windows = _window_view(padded, kernel, kernel, stride)
    cols = np.ascontiguousarray(windows.transpose(0, 1, 4, 5, 2, 3)).reshape(
        n, c, out_h, out_w, kernel * kernel
    )
    out = cols.max(axis=-1)
    winners = cols.argmax(axis=-1)
    del cols

    def backward(grad: np.ndarray):
        rows = winners // kernel + (stride * np.arange(out_h))[None, None, :, None]
        columns = winners % kernel + (stride * np.arange(out_w))[None, None, None, :]
        grad_padded = np.zeros((n, c, ph, pw), dtype=grad.dtype)
        if stride >= kernel:
            # Non-overlapping windows: winner positions are unique, so a
            # vectorised flat-index assignment replaces the slow unbuffered
            # np.add.at scatter.
            batch = np.arange(n)[:, None, None, None]
            channel = np.arange(c)[None, :, None, None]
            flat = ((batch * c + channel) * ph + rows) * pw + columns
            grad_padded.ravel()[flat.ravel()] = grad.ravel()
        else:
            batch = np.arange(n)[:, None, None, None]
            channel = np.arange(c)[None, :, None, None]
            np.add.at(grad_padded, (batch, channel, rows, columns), grad)
        return (grad_padded[:, :, padding:padding + h, padding:padding + w],)

    return make_op(out, (x,), backward, "max_pool2d")


def avg_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Non-overlapping average pooling (kernel == stride).

    Spatial dims must be divisible by ``kernel``; reshaping makes both the
    forward and the backward a pure view operation.
    """
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims ({h},{w}) not divisible by kernel {kernel}")
    out_h, out_w = h // kernel, w // kernel
    reshaped = x.data.reshape(n, c, out_h, kernel, out_w, kernel)
    out = reshaped.mean(axis=(3, 5))
    scale = 1.0 / (kernel * kernel)

    def backward(grad: np.ndarray):
        expanded = np.repeat(np.repeat(grad, kernel, axis=2), kernel, axis=3)
        return (expanded * scale,)

    return make_op(out, (x,), backward, "avg_pool2d")


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the spatial axes, returning (N, C)."""
    n, c, h, w = x.shape
    out = x.data.mean(axis=(2, 3))
    scale = 1.0 / (h * w)

    def backward(grad: np.ndarray):
        return (np.broadcast_to(grad[:, :, None, None], x.shape).copy() * scale,)

    return make_op(out, (x,), backward, "global_avg_pool2d")


def batch_norm2d(
    x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5
) -> tuple[Tensor, np.ndarray, np.ndarray]:
    """Fused training-mode batch normalisation over (N, H, W) per channel.

    Returns ``(out, batch_mean, batch_var)`` — the batch statistics are plain
    arrays for the caller's running-average update.  One graph node replaces
    the ~15 primitive ops of the composite formulation, with the textbook
    backward: ``dx = gamma*inv_std/M * (M*g - sum(g) - xhat*sum(g*xhat))``.
    """
    if x.ndim != 4:
        raise ValueError(f"batch_norm2d expects NCHW input, got {x.shape}")
    x_data = x.data
    mean = x_data.mean(axis=(0, 2, 3))
    var = x_data.var(axis=(0, 2, 3))
    inv_std = 1.0 / np.sqrt(var + eps)
    pool = pool_for_op(x, gamma, beta)
    if pool is not None:
        # Pooled path: the normalised temporary (kept for the backward) and
        # the output both come from the BufferPool; same arithmetic order as
        # the allocating expressions below, so results are bit-identical.
        xhat = pool.acquire(x_data.shape, x_data.dtype)
        np.subtract(x_data, mean[None, :, None, None], out=xhat)
        xhat *= inv_std[None, :, None, None]
        out = pool.acquire(x_data.shape, x_data.dtype)
        np.multiply(gamma.data[None, :, None, None], xhat, out=out)
        out += beta.data[None, :, None, None]
    else:
        xhat = (x_data - mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = gamma.data[None, :, None, None] * xhat + beta.data[None, :, None, None]

    def backward(grad: np.ndarray):
        m = grad.shape[0] * grad.shape[2] * grad.shape[3]
        grad_beta = grad.sum(axis=(0, 2, 3))
        grad_gamma = (grad * xhat).sum(axis=(0, 2, 3))
        scale = (gamma.data * inv_std / m)[None, :, None, None]
        grad_x = scale * (
            m * grad
            - grad_beta[None, :, None, None]
            - xhat * grad_gamma[None, :, None, None]
        )
        return grad_x, grad_gamma, grad_beta

    node = make_op(
        out, (x, gamma, beta), backward, "batch_norm2d",
        retire=(xhat,) if pool is not None and pool.owns(xhat) else (),
        pooled_out=pool is not None and pool.owns(out),
    )
    return node, mean, var


def relu(x: Tensor) -> Tensor:
    pool = pool_for_op(x)
    if pool is not None:
        out = pool.acquire(x.shape, x.data.dtype)
        np.maximum(x.data, 0.0, out=out)
    else:
        out = np.maximum(x.data, 0.0)

    def backward(grad: np.ndarray):
        return (grad * (x.data > 0),)

    return make_op(
        out, (x,), backward, "relu",
        pooled_out=pool is not None and pool.owns(out),
    )


def relu6(x: Tensor) -> Tensor:
    """The MobileNet activation: ``min(max(x, 0), 6)``."""
    pool = pool_for_op(x)
    if pool is not None:
        out = pool.acquire(x.shape, x.data.dtype)
        np.clip(x.data, 0.0, 6.0, out=out)
    else:
        out = np.clip(x.data, 0.0, 6.0)

    def backward(grad: np.ndarray):
        return (grad * ((x.data > 0) & (x.data < 6)),)

    return make_op(
        out, (x,), backward, "relu6",
        pooled_out=pool is not None and pool.owns(out),
    )


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shift = x.data.max(axis=axis, keepdims=True)
    shifted = x.data - shift
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_norm
    softmax_vals = np.exp(out)

    def backward(grad: np.ndarray):
        return (grad - softmax_vals * grad.sum(axis=axis, keepdims=True),)

    return make_op(out, (x,), backward, "log_softmax")


# -- inference kernels (out-buffer entry points) ------------------------------
#
# Autograd-free ndarray kernels used by the compiled runtime
# (repro.runtime.engine).  Each accepts preallocated output/scratch buffers so
# a static execution plan can run without any per-op allocation: `out` is the
# destination (arena slice), `pad_buf` holds the padded input and `cols` the
# materialised im2col columns.  Passing None for any buffer falls back to a
# fresh allocation, which keeps the kernels usable standalone.

def conv2d_into(
    x: np.ndarray,
    weight: np.ndarray,
    *,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
    bias: np.ndarray | None = None,
    act: str | None = None,
    out: np.ndarray | None = None,
    pad_buf: np.ndarray | None = None,
    cols: np.ndarray | None = None,
    residual: np.ndarray | None = None,
) -> np.ndarray:
    """Inference convolution writing into ``out`` (bias + activation fused).

    Same im2col + one-batched-matmul formulation as :func:`conv2d`, but on
    plain arrays with no graph: the columns land in ``cols`` (zero-copy view
    for 1x1/stride-1), the GEMM writes straight into ``out`` via
    ``np.matmul(..., out=...)``, and bias add plus ``relu``/``relu6`` happen
    in place.  ``residual`` is accumulated into ``out`` after the bias and
    before the activation — the conv+add fusion the runtime engine uses for
    residual blocks (one pass over the output instead of a separate add op
    and buffer).  Returns ``out``.
    """
    n, c_in, h, w = x.shape
    c_out, c_in_g, k_h, k_w = weight.shape
    if padding:
        if pad_buf is None:
            pad_buf = np.zeros(
                (n, c_in, h + 2 * padding, w + 2 * padding), dtype=x.dtype
            )
        else:
            pad_buf.fill(0.0)
        pad_buf[:, :, padding:padding + h, padding:padding + w] = x
        src = pad_buf
    else:
        src = x
    out_h = _conv_output_size(src.shape[2], k_h, stride)
    out_w = _conv_output_size(src.shape[3], k_w, stride)
    if out is None:
        out = np.empty((n, c_out, out_h, out_w), dtype=x.dtype)
    w_mat = weight.reshape(groups, c_out // groups, c_in_g * k_h * k_w)
    if k_h == 1 and k_w == 1 and stride == 1:
        # Contiguous input: the column matrix is a free reshape.
        col_view = src.reshape(n, groups, c_in_g, out_h * out_w)
    else:
        view = _window_view(src, k_h, k_w, stride)
        if cols is None:
            cols = np.empty(
                (n, c_in, k_h, k_w, out_h, out_w), dtype=x.dtype
            )
        col6 = cols.reshape(n, c_in, k_h, k_w, out_h, out_w)
        np.copyto(col6, view)
        col_view = col6.reshape(n, groups, c_in_g * k_h * k_w, out_h * out_w)
    np.matmul(
        w_mat[None], col_view,
        out=out.reshape(n, groups, c_out // groups, out_h * out_w),
    )
    if bias is not None:
        out += bias.reshape(1, -1, 1, 1)
    if residual is not None:
        out += residual
    _apply_activation(out, act)
    return out


def linear_into(
    x: np.ndarray,
    weight: np.ndarray,
    *,
    bias: np.ndarray | None = None,
    act: str | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Inference affine map ``x @ weight.T + bias`` written into ``out``."""
    if out is None:
        out = np.empty((x.shape[0], weight.shape[0]), dtype=x.dtype)
    np.matmul(x, weight.T, out=out)
    if bias is not None:
        out += bias
    _apply_activation(out, act)
    return out


def max_pool2d_into(
    x: np.ndarray,
    kernel: int,
    *,
    stride: int | None = None,
    padding: int = 0,
    out: np.ndarray | None = None,
    pad_buf: np.ndarray | None = None,
) -> np.ndarray:
    """Inference max pooling (overlap supported) written into ``out``."""
    if stride is None:
        stride = kernel
    n, c, h, w = x.shape
    if padding:
        if pad_buf is None:
            pad_buf = np.empty(
                (n, c, h + 2 * padding, w + 2 * padding), dtype=x.dtype
            )
        pad_buf.fill(-np.inf)
        pad_buf[:, :, padding:padding + h, padding:padding + w] = x
        src = pad_buf
    else:
        src = x
    out_h = _conv_output_size(src.shape[2], kernel, stride)
    out_w = _conv_output_size(src.shape[3], kernel, stride)
    if out is None:
        out = np.empty((n, c, out_h, out_w), dtype=x.dtype)
    windows = _window_view(src, kernel, kernel, stride)
    np.max(windows, axis=(2, 3), out=out)
    return out


def avg_pool2d_into(
    x: np.ndarray, kernel: int, *, out: np.ndarray | None = None
) -> np.ndarray:
    """Inference non-overlapping average pooling written into ``out``."""
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims ({h},{w}) not divisible by kernel {kernel}")
    out_h, out_w = h // kernel, w // kernel
    if out is None:
        out = np.empty((n, c, out_h, out_w), dtype=x.dtype)
    reshaped = x.reshape(n, c, out_h, kernel, out_w, kernel)
    np.mean(reshaped, axis=(3, 5), out=out)
    return out


def global_avg_pool2d_into(
    x: np.ndarray, *, out: np.ndarray | None = None
) -> np.ndarray:
    """Inference global average pooling (N, C, H, W) -> (N, C) into ``out``."""
    if out is None:
        out = np.empty(x.shape[:2], dtype=x.dtype)
    np.mean(x, axis=(2, 3), out=out)
    return out


def _apply_activation(out: np.ndarray, act: str | None) -> None:
    """In-place fused activation for the inference kernels."""
    if act is None:
        return
    if act == "relu6":
        np.clip(out, 0.0, 6.0, out=out)
    elif act == "relu":
        np.maximum(out, 0.0, out=out)
    else:
        raise ValueError(f"unknown activation {act!r}")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shift = x.data.max(axis=axis, keepdims=True)
    exp = np.exp(x.data - shift)
    out = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray):
        inner = (grad * out).sum(axis=axis, keepdims=True)
        return (out * (grad - inner),)

    return make_op(out, (x,), backward, "softmax")


# -- multi-candidate (batched soft-mode) primitives ---------------------------
#
# Soft Gumbel supernet passes evaluate all M candidate operations of a block
# on the *same* input.  These primitives let the block run as a handful of
# stacked kernels instead of M small ones: candidate weights are stacked
# along C_out (``stack_conv_weights`` — one conv with M*C_out channels, one
# im2col + one GEMM), the shared residual is added to every candidate slice
# in one node (``residual_add_shared``) and the Gumbel mixture
# ``sum_m w_m * out_m`` collapses to ONE einsum tape node
# (``mix_candidates``) instead of M muls + M-1 adds.  See
# repro.nas.batched for the dispatch that buckets candidates and falls back
# to the serial oracle.


def stack_conv_weights(
    weights: Sequence[Tensor], pad_to: int | None = None
) -> Tensor:
    """Stack M candidate conv weights along ``C_out`` into one kernel tensor.

    Every weight is ``(c_out_m, c_in_g, k_m, k_m)`` with a shared ``c_in_g``;
    the result is ``(sum_m c_out_m, c_in_g, K, K)`` with ``K = pad_to`` (or
    the common kernel size).  Smaller (odd) kernels are zero-padded centred in
    the K x K canvas — with "same" padding ``K // 2`` the padded kernel
    computes exactly the same correlation as the original at ``k_m // 2``
    (the extra taps multiply zeros), which is what lets mixed-kernel
    candidates share one grouped conv.  Backward slices the gradient back to
    each candidate's rows and centre window.
    """
    if not weights:
        raise ValueError("stack_conv_weights requires at least one weight")
    c_in_g = weights[0].shape[1]
    kernels = [w.shape[2] for w in weights]
    k_max = pad_to if pad_to is not None else max(kernels)
    rows = [w.shape[0] for w in weights]
    offsets = np.cumsum([0] + rows)
    for w in weights:
        if w.ndim != 4 or w.shape[1] != c_in_g or w.shape[2] != w.shape[3]:
            raise ValueError(f"incompatible candidate weight shape {w.shape}")
        if w.shape[2] > k_max or (k_max - w.shape[2]) % 2:
            raise ValueError(
                f"kernel {w.shape[2]} cannot be centred in a {k_max}x{k_max} canvas"
            )
    out = np.zeros(
        (int(offsets[-1]), c_in_g, k_max, k_max), dtype=weights[0].data.dtype
    )
    for idx, w in enumerate(weights):
        k = kernels[idx]
        off = (k_max - k) // 2
        out[offsets[idx] : offsets[idx + 1], :, off : off + k, off : off + k] = w.data

    def backward(grad: np.ndarray):
        grads = []
        for idx in range(len(weights)):
            k = kernels[idx]
            off = (k_max - k) // 2
            grads.append(
                grad[
                    offsets[idx] : offsets[idx + 1], :, off : off + k, off : off + k
                ].copy()
            )
        return tuple(grads)

    return make_op(out, tuple(weights), backward, "stack_conv_weights")


def residual_add_shared(stacked: Tensor, shortcut: Tensor, copies: int) -> Tensor:
    """Add one shared shortcut to every candidate slice of a stacked tensor.

    ``stacked`` is ``(N, copies * C, H, W)`` — the batched evaluation of
    ``copies`` candidates — and ``shortcut`` is the block input
    ``(N, C, H, W)``.  Per-slice semantics match the serial path's
    ``out_m + x`` bit-for-bit (same elementwise adds); the backward sums the
    gradient over the candidate axis for the shortcut.
    """
    n, c_total, h, w = stacked.shape
    if c_total % copies:
        raise ValueError(f"{c_total} channels not divisible by {copies} copies")
    c = c_total // copies
    if shortcut.shape != (n, c, h, w):
        raise ValueError(
            f"shortcut shape {shortcut.shape} does not match slices of {stacked.shape}"
        )
    pool = pool_for_op(stacked, shortcut)
    if pool is not None:
        out = pool.acquire(stacked.shape, stacked.data.dtype)
    else:
        out = np.empty(stacked.shape, dtype=stacked.data.dtype)
    np.add(
        stacked.data.reshape(n, copies, c, h, w),
        shortcut.data[:, None],
        out=out.reshape(n, copies, c, h, w),
    )

    def backward(grad: np.ndarray):
        return grad, grad.reshape(n, copies, c, h, w).sum(axis=1)

    return make_op(
        out, (stacked, shortcut), backward, "residual_add_shared",
        pooled_out=pool is not None and pool.owns(out),
    )


def project_candidates(
    x: Tensor, weights: Sequence[Tensor], sections: Sequence[int]
) -> Tensor:
    """Ragged-group pointwise projection: one node, per-candidate GEMMs.

    ``x`` is ``(N, sum_m h_m, H, W)`` — candidate hidden activations stacked
    along channels with (possibly differing) widths ``sections`` — and
    ``weights[m]`` is candidate m's 1x1 projection ``(C_out, h_m, 1, 1)``
    with a shared ``C_out``.  A uniform-width stack would be a plain grouped
    conv, but grouped ``conv2d`` requires equal channels per group; this op
    handles the ragged case by looping the per-candidate GEMMs *inside* one
    tape node — the flops match the serial path exactly while M conv nodes
    (each with pad/im2col/closure overhead) collapse into one.  Returns
    ``(N, M * C_out, H, W)``.
    """
    if not weights or len(weights) != len(sections):
        raise ValueError("need one projection weight per section")
    n, c_total, h, w = x.shape
    if sum(sections) != c_total:
        raise ValueError(
            f"sections {tuple(sections)} do not cover {c_total} input channels"
        )
    c_out = weights[0].shape[0]
    for wt, h_m in zip(weights, sections):
        if wt.shape != (c_out, h_m, 1, 1):
            raise ValueError(
                f"weight shape {wt.shape} does not match (C_out={c_out}, {h_m}, 1, 1)"
            )
    copies = len(weights)
    offsets = np.cumsum([0] + list(sections))
    l = h * w
    x_data = x.data
    pool = pool_for_op(x, *weights)
    if pool is not None:
        out = pool.acquire((n, copies * c_out, h, w), x_data.dtype)
    else:
        out = np.empty((n, copies * c_out, h, w), dtype=x_data.dtype)
    for m, wt in enumerate(weights):
        xm = x_data[:, offsets[m] : offsets[m + 1]].reshape(n, sections[m], l)
        np.matmul(
            wt.data.reshape(c_out, sections[m])[None],
            xm,
            out=out[:, m * c_out : (m + 1) * c_out].reshape(n, c_out, l),
        )
    need_input_grad = x.requires_grad or x.backward_fn is not None

    def backward(grad: np.ndarray):
        bpool = get_pool()
        grad_x = (
            np.empty(x_data.shape, dtype=x_data.dtype) if need_input_grad else None
        )
        grads_w = []
        for m, wt in enumerate(weights):
            h_m = sections[m]
            w2d = wt.data.reshape(c_out, h_m)
            xm = x_data[:, offsets[m] : offsets[m + 1]].reshape(n, h_m, l)
            gm = grad[:, m * c_out : (m + 1) * c_out].reshape(n, c_out, l)
            gw_scratch = bpool.acquire((n, c_out, h_m), grad.dtype)
            np.matmul(gm, xm.transpose(0, 2, 1), out=gw_scratch)
            grads_w.append(gw_scratch.sum(axis=0).reshape(wt.shape))
            bpool.release(gw_scratch)
            if grad_x is not None:
                np.matmul(
                    w2d.T[None],
                    gm,
                    out=grad_x[:, offsets[m] : offsets[m + 1]].reshape(n, h_m, l),
                )
        return (grad_x,) + tuple(grads_w)

    return make_op(
        out, (x,) + tuple(weights), backward, "project_candidates",
        pooled_out=pool is not None and pool.owns(out),
    )


def mix_candidates(stacked: Tensor, weights: Tensor, copies: int) -> Tensor:
    """Reduce a stacked candidate tensor to its Gumbel mixture in ONE node.

    ``stacked`` is ``(N, copies * C, H, W)``; ``weights`` is the ``(copies,)``
    slice of the block's Gumbel sample.  Computes
    ``out = sum_m weights[m] * stacked[:, m*C:(m+1)*C]`` as a single einsum
    tape node — the serial path spends ``copies`` muls plus ``copies - 1``
    adds (2*copies - 1 tape nodes) on the same reduction.  Backward:
    ``d stacked = w_m * grad`` per slice and ``d w_m = <grad, slice_m>``.
    """
    n, c_total, h, w = stacked.shape
    if c_total % copies:
        raise ValueError(f"{c_total} channels not divisible by {copies} copies")
    if weights.shape != (copies,):
        raise ValueError(
            f"weights shape {weights.shape} does not match {copies} candidates"
        )
    c = c_total // copies
    stacked5 = stacked.data.reshape(n, copies, c, h, w)
    pool = pool_for_op(stacked, weights)
    if pool is not None:
        out = pool.acquire((n, c, h, w), stacked.data.dtype)
        np.einsum("m,nmchw->nchw", weights.data, stacked5, out=out)
    else:
        out = np.einsum("m,nmchw->nchw", weights.data, stacked5)

    def backward(grad: np.ndarray):
        grad_stacked = (
            weights.data[None, :, None, None, None] * grad[:, None]
        ).reshape(stacked.shape)
        grad_w = np.einsum("nmchw,nchw->m", stacked5, grad)
        return grad_stacked, grad_w

    return make_op(
        out, (stacked, weights), backward, "mix_candidates",
        pooled_out=pool is not None and pool.owns(out),
    )
