"""Shape-manipulation primitives: reshape, transpose, pad, slice, concat."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.autograd.tensor import Tensor, make_op, pool_for_op


def reshape(a: Tensor, shape: tuple[int, ...]) -> Tensor:
    original = a.shape
    out = a.data.reshape(shape)

    def backward(grad: np.ndarray):
        return (grad.reshape(original),)

    return make_op(out, (a,), backward, "reshape")


def flatten(a: Tensor, start_axis: int = 1) -> Tensor:
    """Collapse every axis from ``start_axis`` onward into one."""
    kept = a.shape[:start_axis]
    return reshape(a, kept + (-1,))


def transpose(a: Tensor, axes: tuple[int, ...] | None = None) -> Tensor:
    if axes is None:
        axes = tuple(reversed(range(a.ndim)))
    inverse = tuple(np.argsort(axes))
    out = a.data.transpose(axes)

    def backward(grad: np.ndarray):
        return (grad.transpose(inverse),)

    return make_op(out, (a,), backward, "transpose")


def pad2d(a: Tensor, padding: int | tuple[int, int]) -> Tensor:
    """Zero-pad the last two (spatial) axes of an NCHW tensor."""
    if isinstance(padding, int):
        pad_h = pad_w = padding
    else:
        pad_h, pad_w = padding
    if pad_h == 0 and pad_w == 0:
        return a
    h, w = a.shape[-2], a.shape[-1]
    # zeros + slice assignment: same result as np.pad without its per-call
    # python overhead (this sits on the conv hot path).  The canvas comes
    # from the BufferPool when the training pool is active — it is retired
    # by the tape after the consuming conv's backward has read it.
    pool = pool_for_op(a)
    shape = a.shape[:-2] + (h + 2 * pad_h, w + 2 * pad_w)
    if pool is not None:
        # Recycled buffers carry stale data, but only the border needs
        # zeroing — the interior is fully overwritten below.  Zeroing the
        # four strips instead of the whole canvas keeps the pooled path
        # from paying a full extra memset per conv.
        out = pool.acquire(shape, a.data.dtype)
        if pad_h:
            out[..., :pad_h, :] = 0.0
            out[..., pad_h + h :, :] = 0.0
        if pad_w:
            out[..., pad_h : pad_h + h, :pad_w] = 0.0
            out[..., pad_h : pad_h + h, pad_w + w :] = 0.0
    else:
        out = np.zeros(shape, dtype=a.data.dtype)
    out[..., pad_h : pad_h + h, pad_w : pad_w + w] = a.data

    def backward(grad: np.ndarray):
        sl = [slice(None)] * (a.ndim - 2) + [
            slice(pad_h, pad_h + h),
            slice(pad_w, pad_w + w),
        ]
        return (grad[tuple(sl)],)

    return make_op(
        out, (a,), backward, "pad2d",
        pooled_out=pool is not None and pool.owns(out),
    )


def getitem(a: Tensor, index: Any) -> Tensor:
    out = a.data[index]

    def backward(grad: np.ndarray):
        full = np.zeros_like(a.data)
        np.add.at(full, index, grad)
        return (full,)

    return make_op(out, (a,), backward, "getitem")


def concat(tensors: list[Tensor], axis: int = 0) -> Tensor:
    if not tensors:
        raise ValueError("concat requires at least one tensor")
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray):
        pieces = []
        for i in range(len(tensors)):
            sl = [slice(None)] * grad.ndim
            sl[axis] = slice(offsets[i], offsets[i + 1])
            pieces.append(grad[tuple(sl)])
        return tuple(pieces)

    return make_op(out, tuple(tensors), backward, "concat")


def broadcast_to(a: Tensor, shape: tuple[int, ...]) -> Tensor:
    from repro.autograd.tensor import unbroadcast

    out = np.broadcast_to(a.data, shape).copy()
    original = a.shape

    def backward(grad: np.ndarray):
        return (unbroadcast(grad, original),)

    return make_op(out, (a,), backward, "broadcast_to")
