"""Random search over the fused space — the sanity-check baseline.

Draws uniform random points ``(ops, bit-widths)``, scores each with the
combined objective (short proxy training for accuracy + device model for
performance), and returns the best.  Differentiable co-search should beat
this at equal candidate-evaluation budget; ``bench_ablation_cosearch.py``
checks it does.

Each candidate's proxy training goes through
:func:`repro.core.trainer.train_from_spec`, which drives the shared
:class:`repro.core.engine.SearchEngine` — this module holds no epoch loop of
its own.  With ``workers > 1`` the candidate trainings fan out over a
:class:`repro.core.parallel.ParallelEvaluator`; draws, device evaluation and
ranking stay in the parent process, so the result is bit-identical to the
serial run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import EDDConfig
from repro.core.parallel import (
    ParallelEvaluator,
    train_spec_payload,
    train_spec_worker,
)
from repro.hw.registry import build_hardware_model, quantization_for_target
from repro.data.synthetic import DatasetSplits
from repro.nas.arch_spec import ArchSpec
from repro.nas.space import SearchSpaceConfig
from repro.nas.supernet import constant_sample
from repro.utils.rng import new_rng


@dataclass
class RandomCandidate:
    """One scored random draw."""

    spec: ArchSpec
    top1_error: float
    perf_loss: float
    resource: float
    objective: float


def random_search(
    space: SearchSpaceConfig,
    splits: DatasetSplits,
    config: EDDConfig | None = None,
    num_candidates: int = 4,
    train_epochs: int = 3,
    seed: int = 0,
    workers: int = 1,
) -> tuple[RandomCandidate, list[RandomCandidate]]:
    """Uniform random search; returns (best, all candidates).

    The objective mirrors Eq. 1's multiplicative form with the accuracy term
    replaced by measured proxy error (there is no differentiable path here,
    so the true error is usable directly).

    Args:
        space: Search space to draw architectures from.
        splits: Proxy task used for candidate training and scoring.
        config: Search configuration (target, batch size); defaults to
            ``EDDConfig()``.
        num_candidates: How many uniform draws to score.
        train_epochs: Proxy-training epochs per candidate.
        seed: Seed for the draws; candidate ``i`` trains with ``seed + i``.
        workers: Process count for the candidate trainings.  Any value
            returns identical candidates and ranking (each training is seeded
            per candidate and results are collected in submission order).

    Returns:
        ``(best, candidates)`` — the argmin-objective candidate and the full
        scored list in draw order.
    """
    config = config or EDDConfig()
    rng = new_rng(seed)
    quant = quantization_for_target(config.target)
    hw_model = build_hardware_model(space, config)
    ops = space.candidate_ops()

    # Draw + device-evaluate every candidate up front (cheap, RNG-sequential);
    # only the proxy trainings — the hot part — fan out to workers.
    drawn: list[tuple[ArchSpec, float, float]] = []
    payloads: list[tuple] = []
    for index in range(num_candidates):
        op_idx = rng.integers(0, space.num_ops, size=space.num_blocks)
        bit_shape = quant.phi_shape(space.num_blocks, space.num_ops)[:-1]
        bit_idx = rng.integers(0, quant.num_levels, size=bit_shape)
        sample = constant_sample(space, quant, [int(i) for i in op_idx], bit_idx)
        evaluation = hw_model.evaluate(sample)

        spec = space.spec_for_choices(
            [ops[int(i)] for i in op_idx], name=f"random-{index}"
        )
        spec.metadata["op_labels"] = [ops[int(i)].label for i in op_idx]
        if quant.sharing == "per_block_op":
            block_bits = [
                int(quant.bitwidths[int(bit_idx[i, int(m)])])
                for i, m in enumerate(op_idx)
            ]
        elif quant.sharing == "per_op":
            block_bits = [int(quant.bitwidths[int(bit_idx[int(m)])]) for m in op_idx]
        else:
            block_bits = [int(quant.bitwidths[int(bit_idx)])] * space.num_blocks
        spec.metadata["block_bits"] = block_bits
        drawn.append(
            (spec, float(evaluation.perf_loss.data), float(evaluation.resource.data))
        )
        payloads.append(
            train_spec_payload(spec, train_epochs, config.batch_size, seed + index)
        )

    # splits ship to each worker once (shared slot), not once per candidate.
    results = ParallelEvaluator(workers=workers).map(
        train_spec_worker, payloads, shared=splits
    )

    candidates: list[RandomCandidate] = []
    for (spec, perf, res), result in zip(drawn, results):
        objective = (result.top1_error / 100.0) * perf
        if hw_model.resource_bound is not None and res > hw_model.resource_bound:
            objective *= np.exp((res - hw_model.resource_bound) / hw_model.resource_bound)
        candidates.append(
            RandomCandidate(
                spec=spec,
                top1_error=result.top1_error,
                perf_loss=perf,
                resource=res,
                objective=float(objective),
            )
        )
    best = min(candidates, key=lambda c: c.objective)
    return best, candidates
