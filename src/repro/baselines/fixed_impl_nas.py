"""Hardware-aware NAS with a *fixed* implementation — the prior-art baseline.

The paper's motivating observation (Sec. 1): "all existing works are missing
the large design space of implementation search in their NAS flows, using
estimated hardware performance from a fixed implementation".  This module
implements exactly that setting over the same supernet and device models, so
the co-search ablation (`benchmarks/bench_ablation_cosearch.py`) isolates
the value of searching ``I``:

* quantisation is frozen to one bit-width (default 16);
* parallel factors stay at their initialisation and are never updated;
* only ``Theta`` descends the loss.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.core.config import EDDConfig
from repro.core.cosearch import EDDSearcher
from repro.core.results import SearchResult
from repro.hw.registry import build_hardware_model
from repro.data.synthetic import DatasetSplits
from repro.hw.base import HardwareModel, HwEvaluation
from repro.nas.space import SearchSpaceConfig
from repro.nas.supernet import SampledArch, SuperNet
from repro.nn.module import Parameter


class FrozenImplementationModel(HardwareModel):
    """Wraps a device model, pinning its implementation variables.

    Incoming samples (from an architecture-only supernet) carry no real
    quantisation weights; this wrapper substitutes a constant one-hot at the
    frozen bit-width and exposes no implementation parameters, so ``pf``
    stays at its initial value.
    """

    def __init__(self, inner: HardwareModel, fixed_bits: int = 16) -> None:
        self.inner = inner
        quant = getattr(inner, "quant", None)
        if quant is None:
            self._frozen_quant = Tensor(np.ones((1,)))
            self._sharing = "global"
        else:
            if fixed_bits not in quant.bitwidths:
                raise ValueError(
                    f"fixed_bits={fixed_bits} not in the device menu {quant.bitwidths}"
                )
            shape = quant.phi_shape(inner.space.num_blocks, inner.space.num_ops)
            one_hot = np.zeros(shape)
            one_hot[..., quant.bitwidths.index(fixed_bits)] = 1.0
            self._frozen_quant = Tensor(one_hot)
            self._sharing = quant.sharing
        self.fixed_bits = fixed_bits
        self.resource_bound = inner.resource_bound
        self.expected_sharing = "global"  # accepts arch-only samples

    def implementation_parameters(self) -> list[Parameter]:
        return []  # pf frozen

    @property
    def alpha(self) -> float:
        """Perf-loss scale, proxied to the wrapped model so the searcher's
        alpha calibration normalises the same quantity as in the co-search."""
        return getattr(self.inner, "alpha", 1.0)

    @alpha.setter
    def alpha(self, value: float) -> None:
        self.inner.alpha = value

    def evaluate(self, sample: SampledArch) -> HwEvaluation:
        pinned = SampledArch(
            op_weights=sample.op_weights,
            quant_weights=self._frozen_quant,
            op_indices=sample.op_indices,
            sharing=self._sharing,
            hard=sample.hard,
        )
        return self.inner.evaluate(pinned)


class FixedImplementationNAS(EDDSearcher):
    """Architecture-only differentiable NAS (ProxylessNAS/FBNet-style setting).

    Drop-in comparable to :class:`EDDSearcher`: same space, same data, same
    device model family — minus the implementation search.
    """

    def __init__(
        self,
        space: SearchSpaceConfig,
        splits: DatasetSplits,
        config: EDDConfig | None = None,
        fixed_bits: int = 16,
    ) -> None:
        config = config or EDDConfig()
        supernet = SuperNet(space, quant=None, seed=config.seed)
        hw_model = FrozenImplementationModel(
            build_hardware_model(space, config), fixed_bits=fixed_bits
        )
        super().__init__(
            space, splits, config=config, hw_model=hw_model, supernet=supernet
        )

    def search(self, name: str = "FixedImpl-searched") -> SearchResult:
        result = super().search(name=name)
        result.spec.weight_bits = self.hw_model.fixed_bits
        result.spec.metadata["fixed_implementation"] = True
        return result
