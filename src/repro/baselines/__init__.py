"""Baseline networks and baseline search procedures.

``model_zoo`` encodes every network the paper compares against (Table 1 and
Table 3) plus the three searched EDD-Nets of Fig. 4 as :class:`ArchSpec`
objects, so the analytic device models can regenerate the comparisons.
``fixed_impl_nas`` and ``random_search`` are the search baselines used by
the co-search ablation.
"""

from repro.baselines.model_zoo import (
    MODEL_ZOO,
    PAPER_ACCURACY,
    edd_net_1,
    edd_net_2,
    edd_net_3,
    fbnet_c,
    get_model,
    googlenet,
    mnasnet_a1,
    mobilenet_v2,
    proxyless_cpu,
    proxyless_gpu,
    proxyless_mobile,
    resnet18,
    shufflenet_v2,
    vgg16,
)
from repro.baselines.evolutionary import RegularizedEvolution
from repro.baselines.fixed_impl_nas import FixedImplementationNAS
from repro.baselines.random_search import random_search

__all__ = [
    "FixedImplementationNAS",
    "RegularizedEvolution",
    "MODEL_ZOO",
    "PAPER_ACCURACY",
    "edd_net_1",
    "edd_net_2",
    "edd_net_3",
    "fbnet_c",
    "get_model",
    "googlenet",
    "mnasnet_a1",
    "mobilenet_v2",
    "proxyless_cpu",
    "proxyless_gpu",
    "proxyless_mobile",
    "random_search",
    "resnet18",
    "shufflenet_v2",
    "vgg16",
]
