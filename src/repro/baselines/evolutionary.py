"""Regularized-evolution baseline over the fused {A, I} space.

The paper cites aging evolution (Real et al., AAAI 2019 — its reference [5])
as a leading black-box NAS method; this module implements it over *both* the
architecture genes (op per block) and the implementation genes (bit-width
per block), so the comparison against the differentiable co-search is
apples-to-apples on the same fused space.

Fitness mirrors Eq. 1 with measured quantities: proxy top-1 error times the
device-model performance, with the resource barrier applied on violation.
Aging evolution: keep a population queue; each cycle, sample a tournament,
mutate the best member (one random gene), evaluate, enqueue, and retire the
oldest member.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import EDDConfig
from repro.core.trainer import train_from_spec
from repro.hw.registry import build_hardware_model, quantization_for_target
from repro.data.synthetic import DatasetSplits
from repro.nas.arch_spec import ArchSpec
from repro.nas.space import SearchSpaceConfig
from repro.nas.supernet import constant_sample
from repro.utils.rng import new_rng


@dataclass
class Genome:
    """One individual: op index + bit index per block."""

    ops: np.ndarray
    bits: np.ndarray

    def copy(self) -> "Genome":
        return Genome(self.ops.copy(), self.bits.copy())


@dataclass
class Individual:
    genome: Genome
    spec: ArchSpec
    top1_error: float
    perf_loss: float
    resource: float
    fitness: float


@dataclass
class EvolutionResult:
    best: Individual
    history: list[float] = field(default_factory=list)  # best fitness per cycle
    evaluations: int = 0


class RegularizedEvolution:
    """Aging evolution (tournament + oldest-out) on the fused space."""

    def __init__(
        self,
        space: SearchSpaceConfig,
        splits: DatasetSplits,
        config: EDDConfig | None = None,
        population_size: int = 6,
        tournament_size: int = 3,
        train_epochs: int = 2,
        seed: int = 0,
    ) -> None:
        if population_size < 2:
            raise ValueError(f"population_size must be >= 2, got {population_size}")
        if not 1 <= tournament_size <= population_size:
            raise ValueError(
                f"tournament_size must be in [1, {population_size}], got {tournament_size}"
            )
        self.space = space
        self.splits = splits
        self.config = config or EDDConfig(target="fpga_pipelined")
        self.population_size = population_size
        self.tournament_size = tournament_size
        self.train_epochs = train_epochs
        self.rng = new_rng(seed)
        self.quant = quantization_for_target(self.config.target)
        self.hw_model = build_hardware_model(space, self.config)
        self._eval_count = 0

    # -- genetics ------------------------------------------------------------
    def random_genome(self) -> Genome:
        n = self.space.num_blocks
        return Genome(
            ops=self.rng.integers(0, self.space.num_ops, size=n),
            bits=self.rng.integers(0, self.quant.num_levels, size=n),
        )

    def mutate(self, genome: Genome) -> Genome:
        """One-gene mutation: flip either an op choice or a bit choice."""
        child = genome.copy()
        block = int(self.rng.integers(0, self.space.num_blocks))
        if self.rng.random() < 0.5:
            choices = [m for m in range(self.space.num_ops) if m != child.ops[block]]
            child.ops[block] = self.rng.choice(choices)
        else:
            choices = [q for q in range(self.quant.num_levels) if q != child.bits[block]]
            if choices:
                child.bits[block] = self.rng.choice(choices)
        return child

    # -- evaluation ------------------------------------------------------------
    def _bit_indices_for_sample(self, genome: Genome) -> np.ndarray | int:
        """Map per-block bit genes onto the device's Phi sharing layout."""
        if self.quant.sharing == "per_block_op":
            idx = np.zeros((self.space.num_blocks, self.space.num_ops), dtype=int)
            for i, (m, q) in enumerate(zip(genome.ops, genome.bits)):
                idx[i, :] = q
            return idx
        if self.quant.sharing == "per_op":
            idx = np.zeros(self.space.num_ops, dtype=int)
            for m, q in zip(genome.ops, genome.bits):
                idx[m] = q
            return idx
        return int(genome.bits[0])

    def evaluate(self, genome: Genome, tag: str = "evo") -> Individual:
        menu = self.space.candidate_ops()
        ops = [menu[int(m)] for m in genome.ops]
        spec = self.space.spec_for_choices(ops, name=f"{tag}-{self._eval_count}")
        spec.metadata["op_labels"] = [op.label for op in ops]
        spec.metadata["block_bits"] = [
            int(self.quant.bitwidths[int(q)]) for q in genome.bits
        ]
        sample = constant_sample(
            self.space, self.quant, [int(m) for m in genome.ops],
            self._bit_indices_for_sample(genome),
        )
        hw_eval = self.hw_model.evaluate(sample)
        trained = train_from_spec(
            spec, self.splits, epochs=self.train_epochs,
            batch_size=self.config.batch_size, seed=self._eval_count,
        )
        perf = float(hw_eval.perf_loss.data)
        res = float(hw_eval.resource.data)
        fitness = (trained.top1_error / 100.0) * perf
        bound = self.hw_model.resource_bound
        if bound is not None and res > bound:
            fitness *= float(np.exp(min((res - bound) / bound, 50.0)))
        self._eval_count += 1
        return Individual(
            genome=genome, spec=spec, top1_error=trained.top1_error,
            perf_loss=perf, resource=res, fitness=float(fitness),
        )

    # -- main loop -----------------------------------------------------------
    def run(self, cycles: int = 6) -> EvolutionResult:
        population: list[Individual] = [
            self.evaluate(self.random_genome(), tag="init")
            for _ in range(self.population_size)
        ]
        history = [min(ind.fitness for ind in population)]
        for _ in range(cycles):
            contenders = self.rng.choice(
                len(population), size=self.tournament_size, replace=False
            )
            parent = min((population[i] for i in contenders), key=lambda x: x.fitness)
            child = self.evaluate(self.mutate(parent.genome))
            population.append(child)
            population.pop(0)  # aging: retire the oldest
            history.append(min(ind.fitness for ind in population))
        best = min(population, key=lambda x: x.fitness)
        return EvolutionResult(best=best, history=history, evaluations=self._eval_count)
