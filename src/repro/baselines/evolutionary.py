"""Regularized-evolution baseline over the fused {A, I} space.

The paper cites aging evolution (Real et al., AAAI 2019 — its reference [5])
as a leading black-box NAS method; this module implements it over *both* the
architecture genes (op per block) and the implementation genes (bit-width
per block), so the comparison against the differentiable co-search is
apples-to-apples on the same fused space.

Fitness mirrors Eq. 1 with measured quantities: proxy top-1 error times the
device-model performance, with the resource barrier applied on violation.
Aging evolution: keep a population queue; each cycle, sample a tournament,
mutate the best member (one random gene), evaluate, enqueue, and retire the
oldest member.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import EDDConfig
from repro.core.parallel import (
    ParallelEvaluator,
    train_spec_payload,
    train_spec_worker,
)
from repro.core.trainer import train_from_spec
from repro.hw.registry import build_hardware_model, quantization_for_target
from repro.data.synthetic import DatasetSplits
from repro.nas.arch_spec import ArchSpec
from repro.nas.space import SearchSpaceConfig
from repro.nas.supernet import constant_sample
from repro.utils.rng import new_rng


@dataclass
class Genome:
    """One individual: op index + bit index per block."""

    ops: np.ndarray
    bits: np.ndarray

    def copy(self) -> "Genome":
        return Genome(self.ops.copy(), self.bits.copy())


@dataclass
class Individual:
    genome: Genome
    spec: ArchSpec
    top1_error: float
    perf_loss: float
    resource: float
    fitness: float


@dataclass
class EvolutionResult:
    best: Individual
    history: list[float] = field(default_factory=list)  # best fitness per cycle
    evaluations: int = 0


class RegularizedEvolution:
    """Aging evolution (tournament + oldest-out) on the fused space."""

    def __init__(
        self,
        space: SearchSpaceConfig,
        splits: DatasetSplits,
        config: EDDConfig | None = None,
        population_size: int = 6,
        tournament_size: int = 3,
        train_epochs: int = 2,
        seed: int = 0,
        workers: int = 1,
    ) -> None:
        """Set up the evolution.

        Args:
            space: Architecture search space (op menu per block).
            splits: Proxy task for fitness training.
            config: Search configuration; defaults to the pipelined-FPGA target.
            population_size: Individuals kept alive (must be >= 2).
            tournament_size: Contenders sampled per cycle.
            train_epochs: Proxy-training epochs per evaluation.
            seed: Seed for genome draws, mutation and tournaments.
            workers: Process count for the initial population's proxy
                trainings (the cycles themselves are inherently sequential —
                each mutation depends on the previous tournament).  Results
                are bit-identical for any worker count.

        Raises:
            ValueError: On invalid population/tournament sizes or workers < 1.
        """
        if population_size < 2:
            raise ValueError(f"population_size must be >= 2, got {population_size}")
        if not 1 <= tournament_size <= population_size:
            raise ValueError(
                f"tournament_size must be in [1, {population_size}], got {tournament_size}"
            )
        self.space = space
        self.splits = splits
        self.config = config or EDDConfig(target="fpga_pipelined")
        self.population_size = population_size
        self.tournament_size = tournament_size
        self.train_epochs = train_epochs
        self.rng = new_rng(seed)
        self.quant = quantization_for_target(self.config.target)
        self.hw_model = build_hardware_model(space, self.config)
        self.evaluator = ParallelEvaluator(workers=workers)
        self._eval_count = 0

    # -- genetics ------------------------------------------------------------
    def random_genome(self) -> Genome:
        n = self.space.num_blocks
        return Genome(
            ops=self.rng.integers(0, self.space.num_ops, size=n),
            bits=self.rng.integers(0, self.quant.num_levels, size=n),
        )

    def mutate(self, genome: Genome) -> Genome:
        """One-gene mutation: flip either an op choice or a bit choice."""
        child = genome.copy()
        block = int(self.rng.integers(0, self.space.num_blocks))
        if self.rng.random() < 0.5:
            choices = [m for m in range(self.space.num_ops) if m != child.ops[block]]
            child.ops[block] = self.rng.choice(choices)
        else:
            choices = [q for q in range(self.quant.num_levels) if q != child.bits[block]]
            if choices:
                child.bits[block] = self.rng.choice(choices)
        return child

    # -- evaluation ------------------------------------------------------------
    def _bit_indices_for_sample(self, genome: Genome) -> np.ndarray | int:
        """Map per-block bit genes onto the device's Phi sharing layout."""
        if self.quant.sharing == "per_block_op":
            idx = np.zeros((self.space.num_blocks, self.space.num_ops), dtype=int)
            for i, (m, q) in enumerate(zip(genome.ops, genome.bits)):
                idx[i, :] = q
            return idx
        if self.quant.sharing == "per_op":
            idx = np.zeros(self.space.num_ops, dtype=int)
            for m, q in zip(genome.ops, genome.bits):
                idx[m] = q
            return idx
        return int(genome.bits[0])

    def _prepare(self, genome: Genome, tag: str, index: int):
        """Parent-side candidate prep: spec build + analytic device eval."""
        menu = self.space.candidate_ops()
        ops = [menu[int(m)] for m in genome.ops]
        spec = self.space.spec_for_choices(ops, name=f"{tag}-{index}")
        spec.metadata["op_labels"] = [op.label for op in ops]
        spec.metadata["block_bits"] = [
            int(self.quant.bitwidths[int(q)]) for q in genome.bits
        ]
        sample = constant_sample(
            self.space, self.quant, [int(m) for m in genome.ops],
            self._bit_indices_for_sample(genome),
        )
        hw_eval = self.hw_model.evaluate(sample)
        return spec, float(hw_eval.perf_loss.data), float(hw_eval.resource.data)

    def _assemble(self, genome: Genome, spec: ArchSpec, perf: float,
                  res: float, trained) -> Individual:
        """Combine proxy-training metrics and device eval into an Individual."""
        fitness = (trained.top1_error / 100.0) * perf
        bound = self.hw_model.resource_bound
        if bound is not None and res > bound:
            fitness *= float(np.exp(min((res - bound) / bound, 50.0)))
        return Individual(
            genome=genome, spec=spec, top1_error=trained.top1_error,
            perf_loss=perf, resource=res, fitness=float(fitness),
        )

    def evaluate(self, genome: Genome, tag: str = "evo") -> Individual:
        """Score one genome: proxy-train its spec and apply the Eq. 1 fitness.

        Args:
            genome: Op/bit indices per block.
            tag: Spec-name prefix (the evaluation counter is appended).

        Returns:
            The scored :class:`Individual` (lower ``fitness`` is better).
        """
        index = self._eval_count
        self._eval_count += 1
        spec, perf, res = self._prepare(genome, tag, index)
        trained = train_from_spec(
            spec, self.splits, epochs=self.train_epochs,
            batch_size=self.config.batch_size, seed=index,
        )
        return self._assemble(genome, spec, perf, res, trained)

    # -- main loop -----------------------------------------------------------
    def run(self, cycles: int = 6) -> EvolutionResult:
        """Evolve for ``cycles`` generations; returns the best individual.

        The initial population's proxy trainings run on the evaluator's
        workers (deterministically seeded by evaluation index); the aging
        cycles are sequential by construction.
        """
        # Draw genomes and device-evaluate them in the parent (RNG order
        # matches the serial path), then fan the trainings out.
        genomes = [self.random_genome() for _ in range(self.population_size)]
        prepared = []
        payloads = []
        for genome in genomes:
            index = self._eval_count
            self._eval_count += 1
            spec, perf, res = self._prepare(genome, "init", index)
            prepared.append((genome, spec, perf, res))
            payloads.append(
                train_spec_payload(spec, self.train_epochs,
                                   self.config.batch_size, index)
            )
        trained = self.evaluator.map(
            train_spec_worker, payloads, shared=self.splits
        )
        population: list[Individual] = [
            self._assemble(genome, spec, perf, res, result)
            for (genome, spec, perf, res), result in zip(prepared, trained)
        ]
        history = [min(ind.fitness for ind in population)]
        for _ in range(cycles):
            contenders = self.rng.choice(
                len(population), size=self.tournament_size, replace=False
            )
            parent = min((population[i] for i in contenders), key=lambda x: x.fitness)
            child = self.evaluate(self.mutate(parent.genome))
            population.append(child)
            population.pop(0)  # aging: retire the oldest
            history.append(min(ind.fitness for ind in population))
        best = min(population, key=lambda x: x.fitness)
        return EvolutionResult(best=best, history=history, evaluations=self._eval_count)
