"""Architecture specs for every network in the paper's evaluation.

Baselines (Table 1 / Table 3): GoogleNet, MobileNetV2, ShuffleNetV2,
ResNet18, VGG16, MnasNet-A1, FBNet-C, Proxyless-{cpu, mobile, gpu}.
Searched models (Fig. 4): EDD-Net-1 (GPU), EDD-Net-2 (recursive FPGA),
EDD-Net-3 (pipelined FPGA).

Encodings follow the published architecture tables/diagrams.  The EDD-Nets
are transcribed from the paper's Fig. 4 (block type, kernel, expansion and
channel labels); where the figure's text rendering is ambiguous we keep the
channel schedule and the dominant op pattern, and note that the transcription
is best-effort.  ``PAPER_ACCURACY`` records the paper-reported ImageNet test
errors used in the table reproductions (we cannot retrain ImageNet offline —
see DESIGN.md substitutions).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.nas.arch_spec import (
    ArchSpec,
    Block,
    Branches,
    ConvBlock,
    FCBlock,
    MBConvBlock,
    PoolBlock,
    SepConvBlock,
    ShuffleUnit,
    StemBlock,
)

# Paper-reported ImageNet test errors (Table 1 and Table 3), used verbatim in
# the table reproductions because ImageNet training is out of scope offline.
PAPER_ACCURACY: dict[str, dict[str, float]] = {
    "GoogleNet": {"top1": 30.22, "top5": 10.47},
    "MobileNet-V2": {"top1": 28.1, "top5": 9.7},
    "ShuffleNet-V2": {"top1": 30.6, "top5": 11.7},
    "ResNet18": {"top1": 30.2, "top5": 10.9},
    "MnasNet-A1": {"top1": 24.8, "top5": 7.5},
    "FBNet-C": {"top1": 24.9, "top5": 7.6},
    "Proxyless-cpu": {"top1": 24.7, "top5": 7.6},
    "Proxyless-Mobile": {"top1": 25.4, "top5": 7.8},
    "Proxyless-gpu": {"top1": 24.9, "top5": 7.5},
    "EDD-Net-1": {"top1": 25.3, "top5": 7.7},
    "EDD-Net-2": {"top1": 25.4, "top5": 7.9},
    "EDD-Net-3": {"top1": 25.6, "top5": 7.7},
    "VGG16": {"top1": 29.5, "top5": 10.0},
}


def _mb(e: int, k: int, ch: int, s: int = 1) -> MBConvBlock:
    return MBConvBlock(expansion=e, kernel=k, out_ch=ch, stride=s)


# ------------------------------------------------------------------ classic CNNs
def vgg16(num_classes: int = 1000) -> ArchSpec:
    """VGG-16 (configuration D), the DNNBuilder workload of Table 3."""
    blocks: list[Block] = []
    for out_ch, repeats in ((64, 2), (128, 2), (256, 3), (512, 3), (512, 3)):
        blocks += [ConvBlock(out_ch=out_ch, kernel=3) for _ in range(repeats)]
        blocks.append(PoolBlock(kernel=2, stride=2, mode="max"))
    blocks += [
        FCBlock(out_features=4096, flatten=True),
        FCBlock(out_features=4096),
        FCBlock(out_features=num_classes),
    ]
    return ArchSpec(name="VGG16", blocks=blocks)


def resnet18(num_classes: int = 1000) -> ArchSpec:
    """ResNet-18: conv7x7 stem + 8 basic blocks with identity/projection skips."""

    def basic_block(ch: int, stride: int = 1) -> Branches:
        main: tuple[Block, ...] = (
            ConvBlock(out_ch=ch, kernel=3, stride=stride),
            ConvBlock(out_ch=ch, kernel=3),
        )
        if stride == 1:
            shortcut: tuple[Block, ...] = ()
        else:
            shortcut = (ConvBlock(out_ch=ch, kernel=1, stride=stride),)
        return Branches(branches=(main, shortcut), combine="add")

    blocks: list[Block] = [
        StemBlock(out_ch=64, kernel=7, stride=2),
        PoolBlock(kernel=3, stride=2, mode="max"),
        basic_block(64),
        basic_block(64),
        basic_block(128, stride=2),
        basic_block(128),
        basic_block(256, stride=2),
        basic_block(256),
        basic_block(512, stride=2),
        basic_block(512),
        FCBlock(out_features=num_classes),
    ]
    return ArchSpec(name="ResNet18", blocks=blocks)


def googlenet(num_classes: int = 1000) -> ArchSpec:
    """GoogleNet (Inception v1); 9 inception modules encoded as Branches."""

    def inception(c1: int, c3r: int, c3: int, c5r: int, c5: int, cp: int) -> Branches:
        return Branches(
            branches=(
                (ConvBlock(out_ch=c1, kernel=1),),
                (ConvBlock(out_ch=c3r, kernel=1), ConvBlock(out_ch=c3, kernel=3)),
                (ConvBlock(out_ch=c5r, kernel=1), ConvBlock(out_ch=c5, kernel=5)),
                (PoolBlock(kernel=3, stride=1, mode="max"), ConvBlock(out_ch=cp, kernel=1)),
            ),
            combine="concat",
        )

    blocks: list[Block] = [
        StemBlock(out_ch=64, kernel=7, stride=2),
        PoolBlock(kernel=3, stride=2, mode="max"),
        ConvBlock(out_ch=64, kernel=1),
        ConvBlock(out_ch=192, kernel=3),
        PoolBlock(kernel=3, stride=2, mode="max"),
        inception(64, 96, 128, 16, 32, 32),     # 3a -> 256
        inception(128, 128, 192, 32, 96, 64),   # 3b -> 480
        PoolBlock(kernel=3, stride=2, mode="max"),
        inception(192, 96, 208, 16, 48, 64),    # 4a -> 512
        inception(160, 112, 224, 24, 64, 64),   # 4b -> 512
        inception(128, 128, 256, 24, 64, 64),   # 4c -> 512
        inception(112, 144, 288, 32, 64, 64),   # 4d -> 528
        inception(256, 160, 320, 32, 128, 128), # 4e -> 832
        PoolBlock(kernel=3, stride=2, mode="max"),
        inception(256, 160, 320, 32, 128, 128), # 5a -> 832
        inception(384, 192, 384, 48, 128, 128), # 5b -> 1024
        FCBlock(out_features=num_classes),
    ]
    return ArchSpec(name="GoogleNet", blocks=blocks)


def mobilenet_v2(num_classes: int = 1000) -> ArchSpec:
    """MobileNetV2 1.0x (Sandler et al. 2018, Table 2)."""
    blocks: list[Block] = [StemBlock(out_ch=32, kernel=3, stride=2), SepConvBlock(kernel=3, out_ch=16)]
    schedule = (
        # (expansion, out_ch, repeats, first stride)
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    )
    for e, ch, reps, s in schedule:
        for r in range(reps):
            blocks.append(_mb(e, 3, ch, s if r == 0 else 1))
    blocks += [ConvBlock(out_ch=1280, kernel=1), FCBlock(out_features=num_classes)]
    return ArchSpec(name="MobileNet-V2", blocks=blocks)


def shufflenet_v2(num_classes: int = 1000) -> ArchSpec:
    """ShuffleNetV2 1.0x; contains channel shuffles (NA on the recursive FPGA)."""
    blocks: list[Block] = [
        StemBlock(out_ch=24, kernel=3, stride=2),
        PoolBlock(kernel=3, stride=2, mode="max"),
    ]
    for out_ch, reps in ((116, 4), (232, 8), (464, 4)):
        for r in range(reps):
            blocks.append(ShuffleUnit(out_ch=out_ch, stride=2 if r == 0 else 1))
    blocks += [ConvBlock(out_ch=1024, kernel=1), FCBlock(out_features=num_classes)]
    return ArchSpec(name="ShuffleNet-V2", blocks=blocks)


# --------------------------------------------------------- hardware-aware NAS nets
def mnasnet_a1(num_classes: int = 1000) -> ArchSpec:
    """MnasNet-A1 (Tan et al. 2019); SE modules approximated away."""
    blocks: list[Block] = [StemBlock(out_ch=32, kernel=3, stride=2), SepConvBlock(kernel=3, out_ch=16)]
    schedule = (
        # (expansion, kernel, out_ch, repeats, first stride)
        (6, 3, 24, 2, 2),
        (3, 5, 40, 3, 2),
        (6, 3, 80, 4, 2),
        (6, 3, 112, 2, 1),
        (6, 5, 160, 3, 2),
        (6, 3, 320, 1, 1),
    )
    for e, k, ch, reps, s in schedule:
        for r in range(reps):
            blocks.append(_mb(e, k, ch, s if r == 0 else 1))
    blocks += [ConvBlock(out_ch=1280, kernel=1), FCBlock(out_features=num_classes)]
    return ArchSpec(name="MnasNet-A1", blocks=blocks)


def fbnet_c(num_classes: int = 1000) -> ArchSpec:
    """FBNet-C (Wu et al. 2019, Table 2 right column)."""
    blocks: list[Block] = [StemBlock(out_ch=16, kernel=3, stride=2)]
    layout = (
        # (expansion, kernel, out_ch, stride)
        (1, 3, 16, 1),
        (6, 3, 24, 2), (1, 3, 24, 1), (1, 3, 24, 1), (1, 3, 24, 1),
        (6, 5, 32, 2), (3, 5, 32, 1), (6, 5, 32, 1), (6, 3, 32, 1),
        (6, 5, 64, 2), (6, 5, 64, 1), (6, 5, 64, 1), (6, 3, 64, 1),
        (6, 3, 112, 1), (6, 5, 112, 1), (6, 5, 112, 1), (6, 5, 112, 1),
        (6, 5, 184, 2), (6, 5, 184, 1), (6, 5, 184, 1), (6, 5, 184, 1),
        (6, 5, 352, 1),
    )
    blocks += [_mb(e, k, ch, s) for e, k, ch, s in layout]
    blocks += [ConvBlock(out_ch=1984, kernel=1), FCBlock(out_features=num_classes)]
    return ArchSpec(name="FBNet-C", blocks=blocks)


def _proxyless(name: str, layout: tuple[tuple[int, int, int, int], ...],
               stem_ch: int, head_ch: int, num_classes: int) -> ArchSpec:
    blocks: list[Block] = [
        StemBlock(out_ch=stem_ch, kernel=3, stride=2),
        SepConvBlock(kernel=3, out_ch=stem_ch // 2 if stem_ch >= 32 else 16),
    ]
    blocks += [_mb(e, k, ch, s) for e, k, ch, s in layout]
    blocks += [ConvBlock(out_ch=head_ch, kernel=1), FCBlock(out_features=num_classes)]
    return ArchSpec(name=name, blocks=blocks)


def proxyless_gpu(num_classes: int = 1000) -> ArchSpec:
    """Proxyless-GPU (Cai et al. 2019, Fig. 5): shallow and wide, big kernels."""
    layout = (
        (3, 5, 32, 2), (3, 3, 32, 1),
        (3, 7, 56, 2), (3, 3, 56, 1),
        (6, 7, 112, 2), (3, 5, 112, 1), (3, 5, 112, 1),
        (6, 5, 128, 1), (3, 5, 128, 1), (3, 5, 128, 1),
        (6, 7, 256, 2), (6, 7, 256, 1), (6, 7, 256, 1), (6, 5, 256, 1),
        (6, 7, 432, 1),
    )
    return _proxyless("Proxyless-gpu", layout, stem_ch=40, head_ch=1728, num_classes=num_classes)


def proxyless_cpu(num_classes: int = 1000) -> ArchSpec:
    """Proxyless-CPU: deeper, mostly 3x3 kernels."""
    layout = (
        (3, 3, 24, 2), (3, 3, 24, 1), (3, 3, 24, 1), (3, 3, 24, 1),
        (6, 3, 40, 2), (3, 3, 40, 1), (3, 3, 40, 1), (3, 3, 40, 1),
        (6, 3, 80, 2), (3, 3, 80, 1), (3, 3, 80, 1), (3, 3, 80, 1),
        (6, 3, 96, 1), (3, 3, 96, 1), (3, 3, 96, 1), (3, 3, 96, 1),
        (6, 5, 192, 2), (6, 5, 192, 1), (6, 5, 192, 1), (6, 5, 192, 1),
        (6, 5, 320, 1),
    )
    return _proxyless("Proxyless-cpu", layout, stem_ch=40, head_ch=1432, num_classes=num_classes)


def proxyless_mobile(num_classes: int = 1000) -> ArchSpec:
    """Proxyless-Mobile: mixed 3/5/7 kernels, mobile channel schedule."""
    layout = (
        (3, 5, 32, 2), (3, 3, 32, 1),
        (3, 7, 40, 2), (3, 3, 40, 1), (3, 5, 40, 1), (3, 5, 40, 1),
        (6, 7, 80, 2), (3, 5, 80, 1), (3, 5, 80, 1), (3, 5, 80, 1),
        (6, 5, 96, 1), (3, 5, 96, 1), (3, 5, 96, 1), (3, 5, 96, 1),
        (6, 7, 192, 2), (6, 7, 192, 1), (3, 7, 192, 1), (3, 7, 192, 1),
        (6, 7, 320, 1),
    )
    return _proxyless("Proxyless-Mobile", layout, stem_ch=32, head_ch=1280, num_classes=num_classes)


# --------------------------------------------------------------- EDD-Nets (Fig. 4)
def _edd_prefix(stem_ch: int = 32, trunk_ch: int = 16, pre_ch: int = 32) -> list[Block]:
    """Shared EDD-Net stem: Conv3x3/s2 -> Sep3x3 -> Conv1x1 (Fig. 4)."""
    return [
        StemBlock(out_ch=stem_ch, kernel=3, stride=2),
        SepConvBlock(kernel=3, out_ch=trunk_ch),
        ConvBlock(out_ch=pre_ch, kernel=1),
    ]


def _edd_suffix(num_classes: int, head_ch: int = 1280) -> list[Block]:
    return [ConvBlock(out_ch=head_ch, kernel=1), FCBlock(out_features=num_classes)]


def edd_net_1(num_classes: int = 1000) -> ArchSpec:
    """EDD-Net-1 (GPU target, 16-bit weights): transcribed from Fig. 4.

    Wide use of expansion 5/6 and 5x5 kernels; 20 MBConv blocks.
    """
    layout = (
        (5, 3, 32, 2), (4, 5, 32, 1), (6, 5, 32, 1), (4, 5, 32, 1),
        (4, 5, 40, 2), (4, 3, 40, 1), (5, 5, 40, 1),
        (5, 5, 80, 2), (6, 5, 80, 1), (5, 5, 80, 1), (5, 5, 80, 1),
        (6, 3, 96, 1), (5, 3, 96, 1), (5, 3, 96, 1), (4, 5, 96, 1),
        (6, 5, 192, 2), (6, 3, 192, 1), (6, 5, 192, 1), (6, 5, 192, 1),
        (4, 3, 320, 1),
    )
    blocks = _edd_prefix() + [_mb(e, k, ch, s) for e, k, ch, s in layout]
    blocks += _edd_suffix(num_classes)
    spec = ArchSpec(name="EDD-Net-1", blocks=blocks, weight_bits=16)
    spec.metadata["target"] = "gpu"
    return spec


def edd_net_2(num_classes: int = 1000) -> ArchSpec:
    """EDD-Net-2 (recursive FPGA target): transcribed from Fig. 4.

    Dominated by MB4 3x3 — the resource-sharing term (Eqs. 9-10) rewards
    reusing few distinct IPs across blocks.
    """
    layout = (
        (4, 5, 32, 2), (4, 3, 32, 1),
        (5, 3, 40, 2), (4, 3, 40, 1), (5, 3, 40, 1),
        (5, 5, 80, 2), (4, 3, 80, 1), (4, 3, 80, 1), (5, 5, 80, 1),
        (4, 3, 96, 1), (4, 5, 96, 1), (4, 3, 96, 1), (4, 3, 96, 1), (4, 3, 96, 1),
        (4, 5, 192, 2), (4, 5, 192, 1), (4, 3, 192, 1), (4, 5, 192, 1), (4, 3, 192, 1),
        (6, 3, 320, 1),
    )
    blocks = _edd_prefix() + [_mb(e, k, ch, s) for e, k, ch, s in layout]
    blocks += _edd_suffix(num_classes)
    spec = ArchSpec(name="EDD-Net-2", blocks=blocks, weight_bits=16)
    spec.metadata["target"] = "fpga_recursive"
    return spec


def edd_net_3(num_classes: int = 1000) -> ArchSpec:
    """EDD-Net-3 (pipelined FPGA target): transcribed from Fig. 4.

    Shallower (17 blocks) with wider channels and larger kernels — the
    Log-Sum-Exp throughput objective penalises deep pipelines whose stages
    split the DSP budget thin.
    """
    layout = (
        (5, 5, 32, 2), (6, 5, 32, 1),
        (4, 5, 48, 2), (4, 5, 48, 1), (5, 3, 48, 1),
        (4, 5, 96, 2), (5, 5, 96, 1), (6, 5, 96, 1), (6, 5, 96, 1),
        (6, 5, 128, 1), (4, 3, 128, 1), (4, 3, 128, 1),
        (4, 5, 256, 2), (4, 3, 256, 1), (4, 3, 256, 1), (4, 3, 256, 1),
        (6, 5, 320, 1),
    )
    blocks = _edd_prefix() + [_mb(e, k, ch, s) for e, k, ch, s in layout]
    blocks += _edd_suffix(num_classes)
    spec = ArchSpec(name="EDD-Net-3", blocks=blocks, weight_bits=16)
    spec.metadata["target"] = "fpga_pipelined"
    return spec


# ------------------------------------------------------------------------ registry
MODEL_ZOO: dict[str, Callable[..., ArchSpec]] = {
    "GoogleNet": googlenet,
    "MobileNet-V2": mobilenet_v2,
    "ShuffleNet-V2": shufflenet_v2,
    "ResNet18": resnet18,
    "VGG16": vgg16,
    "MnasNet-A1": mnasnet_a1,
    "FBNet-C": fbnet_c,
    "Proxyless-cpu": proxyless_cpu,
    "Proxyless-Mobile": proxyless_mobile,
    "Proxyless-gpu": proxyless_gpu,
    "EDD-Net-1": edd_net_1,
    "EDD-Net-2": edd_net_2,
    "EDD-Net-3": edd_net_3,
}


def get_model(name: str, num_classes: int = 1000) -> ArchSpec:
    """Look up a zoo network by its Table 1/Table 3 name."""
    if name not in MODEL_ZOO:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODEL_ZOO)}")
    return MODEL_ZOO[name](num_classes=num_classes)


def buildable_models() -> list[str]:
    """Zoo names the network builder (and the compiled runtime) can
    instantiate — everything except the channel-shuffle specs."""
    return [name for name in sorted(MODEL_ZOO) if get_model(name).buildable()]
