"""Stable public facade of the EDD reproduction.

This module is the supported programmatic entry point: typed request /
response dataclasses plus the entry functions —

* :func:`search` / :func:`search_many` — run reduced-scale co-searches for
  any registered target and get machine-readable reports (``search_many``
  batches seeds, optionally with a cross-run result cache);
* :func:`estimate` — batch-evaluate many models x targets x bit-widths with
  the analytic device models in a single call;
* :func:`deploy_plan` — render the per-layer implementation plan a hardware
  engineer would take from a network;
* :func:`compile_model` / :func:`serve_plan` — lower a model into the
  compiled inference runtime (:mod:`repro.runtime`) and optionally stand up
  the micro-batching inference server.

Every response object has a ``to_dict()`` returning plain JSON-serialisable
types (see :mod:`repro.utils.serialization`), which is what the CLI's
``--format json`` prints.  Target and device strings are resolved through
:mod:`repro.hw.registry` — the single dispatch point — so unknown names fail
fast with the list of registered alternatives, and requested bit-widths are
clamped to each target's supported menu *with an explicit note*, never
silently.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.baselines.model_zoo import MODEL_ZOO, get_model
from repro.core.checkpoint import (
    CheckpointCallback,
    find_latest_checkpoint,
    restore_search_state,
)
from repro.core.config import EDDConfig
from repro.core.cosearch import EDDSearcher
from repro.core.parallel import ParallelEvaluator
from repro.core.results import (
    MULTI_SEARCH_OBJECTIVES,
    MultiSearchResult,
    SearchResult,
    TrainResult,
)
from repro.core.trainer import train_from_spec
from repro.data.synthetic import SyntheticTaskConfig, make_synthetic_task
from repro.eval.trajectory import summarize
from repro.hw import registry
from repro.hw.report import deployment_plan as _render_plan
from repro.nas.arch_spec import ArchSpec, scale_spec
from repro.nas.space import SearchSpaceConfig
from repro.resilience import DivergenceGuard, PreemptionCallback, RetryPolicy

__all__ = [
    "DeployPlan",
    "EstimateRecord",
    "EstimateReport",
    "EstimateRequest",
    "MultiSearchResult",
    "RetryPolicy",
    "SearchReport",
    "SearchRequest",
    "compile_model",
    "deploy_plan",
    "devices",
    "estimate",
    "search",
    "search_many",
    "serve_fleet",
    "serve_plan",
    "targets",
    "trace_session",
    "zoo",
]


def _resolve_spec(model: str | ArchSpec) -> ArchSpec:
    """Zoo name or already-built spec -> :class:`ArchSpec`."""
    if isinstance(model, ArchSpec):
        return model
    if model not in MODEL_ZOO:
        raise ValueError(f"unknown model {model!r}, known: {sorted(MODEL_ZOO)}")
    return get_model(model)


# --------------------------------------------------------------- introspection
def targets() -> list[dict[str, Any]]:
    """Machine-readable description of every registered hardware target."""
    out = []
    for name, spec in registry.TARGETS.items():
        out.append({
            "name": name,
            "description": spec.description,
            "default_device": spec.default_device,
            "devices": list(spec.devices),
            "deploy_bits": list(spec.deploy_bits),
            "default_deploy_bits": spec.default_deploy_bits,
            "search_bits": list(spec.quant().bitwidths),
            "sharing": spec.quant().sharing,
            "has_plan": spec.plan_flow is not None,
        })
    return out


def devices() -> list[dict[str, Any]]:
    """Machine-readable description of every registered device."""
    out = []
    for name, dev in registry.DEVICES.items():
        out.append({
            "name": name,
            "display_name": dev.name,
            "kind": type(dev).__name__,
            "targets": [
                t for t, spec in registry.TARGETS.items() if name in spec.devices
            ],
        })
    return out


def zoo() -> list[dict[str, Any]]:
    """Summaries (blocks/layers/MACs/params) of every model-zoo network."""
    return [get_model(name).summary() for name in sorted(MODEL_ZOO)]


# -------------------------------------------------------------- batch estimate
@dataclass
class EstimateRequest:
    """Batch estimate: the cross product of models x targets x bit-widths.

    ``models`` are zoo names or :class:`ArchSpec` objects; empty ``targets``
    means every registered target; empty ``bits`` means each target's default
    deploy precision; ``devices`` optionally overrides the device per target
    (``{"gpu": "gtx-1080ti"}``).
    """

    models: tuple[str | ArchSpec, ...]
    targets: tuple[str, ...] = ()
    bits: tuple[int, ...] = ()
    devices: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.models is None or isinstance(self.models, (str, ArchSpec)):
            self.models = (self.models,) if self.models is not None else ()
        self.models = tuple(self.models)
        if isinstance(self.targets, str):
            self.targets = (self.targets,)
        self.targets = tuple(self.targets)
        if isinstance(self.bits, int):
            self.bits = (self.bits,)
        self.bits = tuple(self.bits)
        if not self.models:
            raise ValueError("EstimateRequest needs at least one model")

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form of the request."""
        return {
            "models": [
                m.name if isinstance(m, ArchSpec) else m for m in self.models
            ],
            "targets": list(self.targets),
            "bits": list(self.bits),
            "devices": dict(self.devices),
        }


@dataclass
class EstimateRecord:
    """One (model, target, device, bits) analytic evaluation."""

    model: str
    target: str
    device: str
    requested_bits: int
    bits: int
    clamped: bool
    supported: bool
    metric: str
    value: float | None
    note: str = ""
    macs: int = 0
    params: int = 0
    extras: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form of this record."""
        return {
            "model": self.model,
            "target": self.target,
            "device": self.device,
            "requested_bits": self.requested_bits,
            "bits": self.bits,
            "clamped": self.clamped,
            "supported": self.supported,
            "metric": self.metric,
            "value": self.value,
            "note": self.note,
            "macs": self.macs,
            "params": self.params,
            "extras": dict(self.extras),
        }


@dataclass
class EstimateReport:
    """All records of one batch estimate call."""

    records: list[EstimateRecord]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def for_model(self, model: str) -> list[EstimateRecord]:
        """All records of one model (by resolved spec name)."""
        return [r for r in self.records if r.model == model]

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form: record count plus every record."""
        return {
            "count": len(self.records),
            "records": [r.to_dict() for r in self.records],
        }


def estimate(
    request: EstimateRequest | None = None,
    *,
    models: Any = None,
    targets: Any = (),
    bits: Any = (),
    devices: dict[str, str] | None = None,
) -> EstimateReport:
    """Evaluate many models on many targets at many precisions in one call.

    Either pass an :class:`EstimateRequest` or use the keyword shorthand::

        report = estimate(models=["ResNet18", "EDD-Net-1"],
                          targets=["gpu", "fpga_recursive", "fpga_pipelined"])

    Bit-widths outside a target's menu are clamped to the nearest supported
    width and flagged with ``clamped=True`` plus a human-readable ``note``;
    networks a flow cannot map (e.g. ShuffleNet on the recursive FPGA) come
    back with ``supported=False`` instead of raising, so one bad combination
    does not sink a batch.
    """
    if request is None:
        request = EstimateRequest(
            models=models, targets=targets, bits=bits, devices=devices or {}
        )
    target_names = list(request.targets) or registry.target_names()
    estimated = {registry.get_target(t).name for t in target_names}
    for key in request.devices:
        # get_target fails fast on unknown names; a known-but-absent target
        # would otherwise make the override a silent no-op.
        if registry.get_target(key).name not in estimated:
            raise ValueError(
                f"devices override names target {key!r} which is not being "
                f"estimated; estimating: {sorted(estimated)}"
            )
    records: list[EstimateRecord] = []
    for model in request.models:
        arch = _resolve_spec(model)
        macs, params = arch.total_macs(), arch.total_params()
        for target_name in target_names:
            tspec = registry.get_target(target_name)
            device = tspec.resolve_device(request.devices.get(target_name))
            for requested in request.bits or (tspec.default_deploy_bits,):
                effective, clamped = tspec.clamp_bits(requested)
                outcome = tspec.estimate(arch, device, effective)
                notes = []
                if clamped:
                    notes.append(tspec.clamp_note(requested, effective))
                if outcome.note:
                    notes.append(outcome.note)
                records.append(
                    EstimateRecord(
                        model=arch.name,
                        target=tspec.name,
                        device=device.name,
                        requested_bits=requested,
                        bits=effective,
                        clamped=clamped,
                        supported=outcome.supported,
                        metric=outcome.metric,
                        value=outcome.value,
                        note="; ".join(notes),
                        macs=macs,
                        params=params,
                        extras=dict(outcome.extras),
                    )
                )
    return EstimateReport(records=records)


# ---------------------------------------------------------------------- search
@dataclass
class SearchRequest:
    """One reduced-scale co-search on the synthetic proxy task.

    ``resource_fraction=None`` uses the target's registered default (tight
    DSP budgets for the FPGA flows, unbounded for GPU).  ``retrain_epochs>0``
    additionally retrains the derived network from scratch.

    ``checkpoint_dir`` enables engine-level checkpointing: searcher state is
    snapshotted every ``checkpoint_every`` epochs.  With ``resume=True`` the
    search restarts from the newest checkpoint in that directory (if any) and
    finishes bit-identically to an uninterrupted run with the same seed.

    ``max_rollbacks > 0`` arms the divergence guard
    (:class:`repro.resilience.DivergenceGuard`): an epoch with non-finite
    losses or parameters is rolled back to the last good checkpoint and
    replayed with both learning rates scaled by ``rollback_lr_scale``;
    interventions land in :attr:`SearchReport.interventions`, and exceeding
    the budget raises :class:`repro.resilience.DivergenceError`.  Without a
    ``checkpoint_dir`` the guard keeps its checkpoints in a private
    temporary directory.
    """

    target: str = "gpu"
    device: str | None = None
    epochs: int = 6
    blocks: int = 3
    seed: int = 0
    batch_size: int = 12
    num_classes: int = 6
    input_size: int = 12
    resource_fraction: float | None = None
    arch_start_epoch: int = 1
    retrain_epochs: int = 0
    name: str | None = None
    checkpoint_dir: str | None = None
    checkpoint_every: int = 1
    resume: bool = False
    max_rollbacks: int = 0
    rollback_lr_scale: float = 0.5

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form of the request (subset echoed into reports)."""
        return {
            "target": self.target,
            "device": self.device,
            "epochs": self.epochs,
            "blocks": self.blocks,
            "seed": self.seed,
            "batch_size": self.batch_size,
            "resource_fraction": self.resource_fraction,
            "retrain_epochs": self.retrain_epochs,
            "checkpoint_dir": self.checkpoint_dir,
            "checkpoint_every": self.checkpoint_every,
            "resume": self.resume,
            "max_rollbacks": self.max_rollbacks,
            "rollback_lr_scale": self.rollback_lr_scale,
        }


@dataclass
class SearchReport:
    """Machine-readable outcome of one :func:`search` call."""

    target: str
    device: str
    spec_name: str
    result: SearchResult
    converged: bool
    train_loss_drop: float
    final_theta_perplexity: float
    retrain: TrainResult | None = None
    seed: int = 0
    #: Path of the checkpoint the run restarted from, or ``None``.
    resumed_from: str | None = None
    #: True when :func:`search_many` killed this run at the probe stage as
    #: dominated — the report then covers only the probe epochs.
    early_stopped: bool = False
    #: Divergence-guard interventions (rollback epoch, LR scaling) applied
    #: during the run; empty for a run that never diverged.
    interventions: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (what ``repro search --format json`` prints)."""
        return {
            "target": self.target,
            "device": self.device,
            "seed": self.seed,
            "spec_name": self.spec_name,
            "converged": self.converged,
            "train_loss_drop": self.train_loss_drop,
            "final_theta_perplexity": self.final_theta_perplexity,
            "resumed_from": self.resumed_from,
            "early_stopped": self.early_stopped,
            "interventions": list(self.interventions),
            "search": self.result.to_dict(),
            "retrain": self.retrain.to_dict() if self.retrain else None,
        }


def search(request: SearchRequest | None = None, **kwargs: Any) -> SearchReport:
    """Run one co-search for any registered target; returns a typed report.

    Accepts a :class:`SearchRequest` or its fields as keyword arguments::

        report = search(target="fpga_pipelined", epochs=4, blocks=3)
        json.dumps(report.to_dict())

    With ``checkpoint_dir`` set, searcher state is snapshotted every
    ``checkpoint_every`` epochs; with ``resume=True`` the run restarts from
    the newest checkpoint there (a resumed run reproduces the uninterrupted
    run's result arrays bit-identically).

    Args:
        request: A fully built :class:`SearchRequest`, or ``None`` to build
            one from ``kwargs``.
        **kwargs: :class:`SearchRequest` field overrides (ignored when
            ``request`` is given).

    Returns:
        A :class:`SearchReport`; ``report.to_dict()`` is JSON-serialisable.

    Raises:
        ValueError: For unknown targets/devices (from the registry) or
            invalid request field combinations.
    """
    if request is None:
        request = SearchRequest(**kwargs)
    if request.max_rollbacks < 0:
        raise ValueError(
            f"max_rollbacks must be >= 0, got {request.max_rollbacks}"
        )
    tspec = registry.get_target(request.target)
    device = tspec.resolve_device(request.device)
    space = SearchSpaceConfig.reduced(
        num_blocks=request.blocks,
        num_classes=request.num_classes,
        input_size=request.input_size,
    )
    splits = make_synthetic_task(
        SyntheticTaskConfig(
            num_classes=request.num_classes, image_size=request.input_size,
            train_per_class=16, val_per_class=8, test_per_class=8,
            seed=request.seed,
        )
    )
    fraction = (
        tspec.default_resource_fraction
        if request.resource_fraction is None
        else request.resource_fraction
    )
    config = EDDConfig(
        target=tspec.name, epochs=request.epochs, batch_size=request.batch_size,
        seed=request.seed, arch_start_epoch=request.arch_start_epoch,
        resource_fraction=fraction,
    )
    hw_model = tspec.build_model(space, config, device=device)
    searcher = EDDSearcher(space, splits, config, hw_model=hw_model)

    callbacks: list[Any] = []
    start_epoch = 0
    initial_history: list[Any] = []
    resumed_from = None
    guard: DivergenceGuard | None = None
    checkpoint_callback: CheckpointCallback | None = None
    with contextlib.ExitStack() as stack:
        checkpoint_dir: Path | None = None
        if request.checkpoint_dir is not None:
            checkpoint_dir = Path(request.checkpoint_dir)
            if request.resume:
                latest = find_latest_checkpoint(checkpoint_dir)
                if latest is not None:
                    state = restore_search_state(searcher, latest)
                    start_epoch = state.epoch
                    initial_history = state.history
                    resumed_from = str(latest)
        elif request.max_rollbacks > 0:
            # Rollback needs checkpoints to roll back *to*; without a
            # user-visible directory they live in a private tempdir.
            checkpoint_dir = Path(
                stack.enter_context(
                    tempfile.TemporaryDirectory(prefix="repro-rollback-")
                )
            )
        if checkpoint_dir is not None:
            checkpoint_callback = CheckpointCallback(
                searcher, checkpoint_dir,
                every=request.checkpoint_every,
                history=initial_history,
            )
            callbacks.append(checkpoint_callback)
        if request.max_rollbacks > 0:
            guard = DivergenceGuard(
                searcher, checkpoint_dir,
                callback=checkpoint_callback,
                max_rollbacks=request.max_rollbacks,
                lr_scale=request.rollback_lr_scale,
            )
            guard.prepare(start_epoch=start_epoch, history=initial_history)
        # Preemption (SIGTERM/SIGINT under an active PreemptionGuard):
        # checkpoint at the epoch boundary, then raise Preempted.  A no-op
        # when no guard is installed.
        callbacks.append(PreemptionCallback(checkpoint_callback))
        result = searcher.search(
            name=request.name or f"api-{tspec.name}",
            callbacks=callbacks,
            start_epoch=start_epoch,
            initial_history=initial_history,
            divergence_guard=guard,
        )
    summary = summarize(result.history)
    retrain = None
    if request.retrain_epochs > 0:
        retrain = train_from_spec(
            result.spec, splits, epochs=request.retrain_epochs,
            batch_size=request.batch_size, seed=request.seed,
        )
    return SearchReport(
        target=tspec.name,
        device=device.name,
        spec_name=result.spec.name,
        result=result,
        converged=summary.converged(),
        train_loss_drop=summary.train_loss_drop,
        final_theta_perplexity=summary.final_theta_perplexity,
        retrain=retrain,
        seed=request.seed,
        resumed_from=resumed_from,
        interventions=list(guard.interventions) if guard is not None else [],
    )


def _search_worker(request: SearchRequest) -> SearchReport:
    """Worker for :func:`search_many` (module-level so it pickles)."""
    return search(request)


def _request_digest(kwargs: dict[str, Any]) -> str:
    """Stable digest of the *shared* search configuration.

    Built from every :class:`SearchRequest` field except the per-run managed
    ones (``seed``, ``checkpoint_dir``) — two ``search_many`` calls whose
    shared configuration matches therefore hash identically, which is what
    keys the cross-run result cache.
    """
    template = dataclasses.asdict(SearchRequest(**kwargs))
    template.pop("seed")
    template.pop("checkpoint_dir")
    payload = json.dumps(template, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _cache_path(cache_dir: Path, digest: str, seed: int) -> Path:
    return cache_dir / f"search-{digest}-seed-{seed}.pkl"


def _load_cached_report(path: Path) -> SearchReport | None:
    """Read one cache entry; unreadable/truncated files are cache misses.

    A run killed mid-write (or an old incompatible pickle) must not poison
    every later ``search_many`` with the same configuration — the seed is
    simply searched again and the entry rewritten.
    """
    try:
        with path.open("rb") as fh:
            return pickle.load(fh)
    except (OSError, EOFError, pickle.UnpicklingError, AttributeError,
            ImportError, IndexError):
        return None


def _store_cached_report(path: Path, report: SearchReport) -> None:
    """Atomically persist one cache entry (write temp file, then rename)."""
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    with tmp.open("wb") as fh:
        pickle.dump(report, fh)
    os.replace(tmp, path)


def search_many(
    seeds: Any,
    *,
    workers: int = 1,
    objective: str = "total_loss",
    checkpoint_dir: str | None = None,
    cache_dir: str | None = None,
    early_stop_after: int | None = None,
    early_stop_keep: int = 1,
    task_timeout: float | None = None,
    retry_policy: RetryPolicy | None = None,
    **kwargs: Any,
) -> MultiSearchResult:
    """Batched multi-seed co-search sharing one configuration.

    Runs :func:`search` once per seed — fanned out over ``workers`` processes
    via :class:`repro.core.parallel.ParallelEvaluator` — and aggregates the
    per-seed reports into a :class:`MultiSearchResult` whose ``best`` run
    minimises the final-epoch ``objective``.  Because every run is fully
    determined by its seed, rankings are identical for any worker count.

    With ``checkpoint_dir`` set, each seed checkpoints into its own
    ``seed-<n>/`` subdirectory; pass ``resume=True`` (forwarded to each
    :class:`SearchRequest`) to restart every seed from its newest checkpoint.

    With ``cache_dir`` set, every finished per-seed report is persisted
    keyed on (shared-request digest, seed); a re-run with the same shared
    configuration loads those seeds from the cache instead of searching them
    again, so only new seeds cost compute.  Cached seeds are listed in the
    result's ``cached_seeds``.

    With ``early_stop_after`` set, the batch runs in two stages: every seed
    is first *probed* for that many epochs, then only the ``early_stop_keep``
    best probes (by ``objective``) are resumed from their probe checkpoints
    to the full epoch count — clearly dominated seeds are killed early.
    Because the Gumbel temperature anneal depends only on the epoch index
    and checkpoint resume is bit-identical, a survivor's final report is
    exactly what an un-probed full run of that seed would have produced.
    Dominated seeds keep their probe-stage reports, flagged
    ``early_stopped=True``, and are listed in ``early_stopped_seeds``; they
    are never selected as ``best``.

    Args:
        seeds: Iterable of integer seeds, one search per entry (duplicates
            are rejected — they would collide on checkpoint directories).
        workers: Process count for the batch (``1`` = serial in-process).
        objective: Aggregation key, one of
            :data:`repro.core.results.MULTI_SEARCH_OBJECTIVES`.
        checkpoint_dir: Parent directory for per-seed checkpoint subdirs.
        cache_dir: Cross-run result cache directory; completed seeds are
            skipped on re-run when the shared configuration is unchanged.
        early_stop_after: Probe-stage epoch count; ``None`` disables early
            stopping.  Incompatible with ``cache_dir`` and ``resume`` (a
            probe report must never be cached or resumed as if it were a
            full run).
        early_stop_keep: How many probe-stage leaders survive to the full
            epoch count (the rest are early-stopped).
        task_timeout: Optional per-seed wall-clock budget in seconds for
            the parallel fan-out; a wedged worker is killed, the pool
            rebuilt, and the seed retried within ``retry_policy``'s budget
            (see :class:`repro.core.parallel.ParallelEvaluator`).
        retry_policy: Optional :class:`RetryPolicy` granting crashed/
            failed seeds bounded retries with deterministic backoff.
            Because every seed is self-contained, retries never change
            results or rankings.
        **kwargs: Shared :class:`SearchRequest` fields (``target``,
            ``epochs``, ``blocks``, ``resume``, ...).  ``seed`` and
            ``checkpoint_dir`` are managed per run and cannot be passed here.

    Returns:
        A :class:`MultiSearchResult` (``.to_dict()`` gives one record per
        seed plus an ``aggregate`` block).

    Raises:
        ValueError: On empty/duplicate seeds, an unknown ``objective``, or
            per-seed fields in ``kwargs``.
    """
    seeds = [int(s) for s in seeds]
    if not seeds:
        raise ValueError("search_many needs at least one seed")
    if len(set(seeds)) != len(seeds):
        raise ValueError(f"duplicate seeds in {seeds}")
    if objective not in MULTI_SEARCH_OBJECTIVES:
        raise ValueError(
            f"unknown objective {objective!r}, known: {MULTI_SEARCH_OBJECTIVES}"
        )
    for managed in ("seed", "checkpoint_dir"):
        if managed in kwargs:
            raise ValueError(
                f"{managed!r} is managed per run by search_many; "
                f"pass seeds=... / checkpoint_dir=... instead"
            )
    if early_stop_after is not None:
        if early_stop_after < 1:
            raise ValueError(
                f"early_stop_after must be >= 1, got {early_stop_after}"
            )
        if early_stop_keep < 1:
            raise ValueError(
                f"early_stop_keep must be >= 1, got {early_stop_keep}"
            )
        if cache_dir is not None:
            raise ValueError(
                "early_stop_after cannot be combined with cache_dir: a "
                "probe-stage report must never be cached as a full run"
            )
        if kwargs.get("resume"):
            raise ValueError(
                "early_stop_after cannot be combined with resume=True: the "
                "probe stage manages its own checkpoints"
            )
        full_epochs = int(kwargs.get("epochs", SearchRequest().epochs))
        if early_stop_after >= full_epochs:
            early_stop_after = None  # probing the whole run kills nothing
    start = time.perf_counter()
    evaluator = ParallelEvaluator(
        workers=workers, task_timeout=task_timeout, retry=retry_policy
    )
    if early_stop_after is not None:
        return _search_many_early_stop(
            seeds,
            workers=workers,
            objective=objective,
            checkpoint_dir=checkpoint_dir,
            probe_epochs=early_stop_after,
            keep=early_stop_keep,
            kwargs=kwargs,
            start=start,
            evaluator=evaluator,
        )
    cached: dict[int, SearchReport] = {}
    digest = ""
    if cache_dir is not None:
        digest = _request_digest(kwargs)
        cache_root = Path(cache_dir)
        for seed in seeds:
            path = _cache_path(cache_root, digest, seed)
            if path.exists():
                report = _load_cached_report(path)
                if report is not None:
                    cached[seed] = report
    pending = [seed for seed in seeds if seed not in cached]
    requests = []
    for seed in pending:
        per_seed_dir = (
            str(Path(checkpoint_dir) / f"seed-{seed}")
            if checkpoint_dir is not None else None
        )
        requests.append(
            SearchRequest(seed=seed, checkpoint_dir=per_seed_dir, **kwargs)
        )
    fresh = (
        list(evaluator.map(_search_worker, requests)) if requests else []
    )
    by_seed = dict(cached)
    by_seed.update(zip(pending, fresh))
    if cache_dir is not None:
        cache_root = Path(cache_dir)
        cache_root.mkdir(parents=True, exist_ok=True)
        for seed, report in zip(pending, fresh):
            _store_cached_report(_cache_path(cache_root, digest, seed), report)
    wall = time.perf_counter() - start
    return MultiSearchResult.from_runs(
        seeds=seeds,
        runs=[by_seed[seed] for seed in seeds],
        objective=objective,
        workers=workers,
        wall_seconds=wall,
        cached_seeds=sorted(cached),
    )


def _search_many_early_stop(
    seeds: list[int],
    *,
    workers: int,
    objective: str,
    checkpoint_dir: str | None,
    probe_epochs: int,
    keep: int,
    kwargs: dict[str, Any],
    start: float,
    evaluator: ParallelEvaluator | None = None,
) -> MultiSearchResult:
    """Two-stage :func:`search_many`: probe every seed, finish the leaders.

    Stage 1 runs every seed for ``probe_epochs`` epochs, checkpointing each
    epoch.  Stage 2 resumes the ``keep`` best probes (final-epoch
    ``objective``, NaN ranks last, ties broken by seed order) from their
    probe checkpoints to the full epoch count — bit-identical to un-probed
    full runs, since the anneal schedule depends only on the epoch index
    and resume is exact.  Dominated seeds keep their probe reports, flagged
    ``early_stopped=True``.
    """
    import contextlib
    import tempfile

    if evaluator is None:
        evaluator = ParallelEvaluator(workers=workers)
    context = (
        contextlib.nullcontext(checkpoint_dir)
        if checkpoint_dir is not None
        else tempfile.TemporaryDirectory(prefix="repro-earlystop-")
    )
    with context as root:
        def seed_dir(seed: int) -> str:
            return str(Path(root) / f"seed-{seed}")

        probe_kwargs = dict(kwargs)
        probe_kwargs["epochs"] = probe_epochs
        probe_kwargs["retrain_epochs"] = 0  # probes never retrain
        probe_kwargs["checkpoint_every"] = 1  # snapshot at the probe end
        probe_kwargs.pop("resume", None)
        probe_requests = [
            SearchRequest(seed=seed, checkpoint_dir=seed_dir(seed),
                          **probe_kwargs)
            for seed in seeds
        ]
        probes = list(evaluator.map(_search_worker, probe_requests))
        ranked = []
        for report in probes:
            history = report.result.history
            value = (
                float(getattr(history[-1], objective))
                if history else float("nan")
            )
            ranked.append(float("inf") if value != value else value)
        order = sorted(range(len(seeds)), key=lambda i: (ranked[i], i))
        survivor_indices = sorted(order[:keep])
        full_kwargs = {
            key: value for key, value in kwargs.items() if key != "resume"
        }
        full_requests = [
            SearchRequest(seed=seeds[index], checkpoint_dir=seed_dir(seeds[index]),
                          resume=True, **full_kwargs)
            for index in survivor_indices
        ]
        finished = list(evaluator.map(_search_worker, full_requests))
    by_index = dict(zip(survivor_indices, finished))
    runs = []
    early_stopped_seeds = []
    for index, probe in enumerate(probes):
        if index in by_index:
            runs.append(by_index[index])
        else:
            probe.early_stopped = True
            early_stopped_seeds.append(seeds[index])
            runs.append(probe)
    return MultiSearchResult.from_runs(
        seeds=seeds,
        runs=runs,
        objective=objective,
        workers=workers,
        wall_seconds=time.perf_counter() - start,
        early_stopped_seeds=early_stopped_seeds,
    )


# ----------------------------------------------------------------- deploy plan
@dataclass
class DeployPlan:
    """A rendered per-layer implementation plan plus its headline metric."""

    model: str
    target: str
    device: str
    requested_bits: int
    bits: int
    clamped: bool
    metric: str
    value: float | None
    text: str
    note: str = ""

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form of the plan (includes the rendered text)."""
        return {
            "model": self.model,
            "target": self.target,
            "device": self.device,
            "requested_bits": self.requested_bits,
            "bits": self.bits,
            "clamped": self.clamped,
            "metric": self.metric,
            "value": self.value,
            "note": self.note,
            "text": self.text,
        }


def deploy_plan(
    model: str | ArchSpec,
    target: str,
    device: str | None = None,
    bits: int | None = None,
) -> DeployPlan:
    """Per-layer deployment plan of ``model`` on ``target``.

    Raises ``ValueError`` for unknown models/targets/devices, and for
    targets without a plan renderer (currently ``accel``).
    """
    arch = _resolve_spec(model)
    tspec = registry.get_target(target)
    if tspec.plan_flow is None:
        plannable = [
            n for n, s in registry.TARGETS.items() if s.plan_flow is not None
        ]
        raise ValueError(
            f"target {tspec.name!r} has no deployment-plan renderer; "
            f"plans exist for: {plannable}"
        )
    dev = tspec.resolve_device(device)
    requested = tspec.default_deploy_bits if bits is None else bits
    effective, clamped = tspec.clamp_bits(requested)
    note = tspec.clamp_note(requested, effective) if clamped else ""
    outcome = tspec.estimate(arch, dev, effective)
    return DeployPlan(
        model=arch.name,
        target=tspec.name,
        device=dev.name,
        requested_bits=requested,
        bits=effective,
        clamped=clamped,
        metric=outcome.metric,
        value=outcome.value,
        text=_render_plan(arch, tspec.plan_flow, dev, effective),
        note=note,
    )


# -------------------------------------------------------------------- runtime
def _runtime_spec(
    model: str | ArchSpec,
    width_mult: float | None,
    input_size: int | None,
    num_classes: int | None,
) -> ArchSpec:
    """Resolve and optionally rescale a model for the compiled runtime."""
    arch = _resolve_spec(model)
    if width_mult is not None or input_size is not None or num_classes is not None:
        arch = scale_spec(
            arch,
            width_mult=width_mult if width_mult is not None else 1.0,
            input_size=input_size,
            num_classes=num_classes,
        )
    return arch


def compile_model(
    model: str | ArchSpec,
    *,
    bits: int | None = None,
    seed: int | None = 0,
    width_mult: float | None = None,
    input_size: int | None = None,
    num_classes: int | None = None,
):
    """Compile a model into a ready-to-run inference :class:`Engine`.

    ``model`` is a zoo name or :class:`ArchSpec`; ``width_mult`` /
    ``input_size`` / ``num_classes`` optionally rescale it first (the same
    reduced-scale knobs the proxy task uses).  The spec is instantiated with
    ``seed`` weights, lowered into a static plan (BatchNorm folded,
    ``bits``-bit fake-quantisation baked) and wrapped in an arena-backed
    executor — see :mod:`repro.runtime`.

    Returns:
        A :class:`repro.runtime.engine.Engine`; ``engine.run(batch)``
        numerically matches ``BuiltNetwork.forward`` in eval mode.
    """
    from repro.runtime import Engine, compile_spec

    arch = _runtime_spec(model, width_mult, input_size, num_classes)
    return Engine(compile_spec(arch, bits=bits, seed=seed))


def serve_plan(
    model: str | ArchSpec,
    *,
    bits: int | None = None,
    seed: int | None = 0,
    width_mult: float | None = None,
    input_size: int | None = None,
    num_classes: int | None = None,
    max_batch: int = 8,
    max_wait_ms: float = 2.0,
):
    """Compile ``model`` and stand up a micro-batching inference server.

    The returned :class:`repro.runtime.serve.InferenceServer` coalesces
    concurrent requests up to ``max_batch`` samples (waiting at most
    ``max_wait_ms`` for stragglers) and records per-request latency; use it
    as a context manager so the worker thread is torn down::

        with api.serve_plan("MobileNet-V2", width_mult=0.1, input_size=16) as srv:
            logits = srv.infer(x)
            print(srv.stats())
    """
    from repro.runtime import InferenceServer

    engine = compile_model(
        model, bits=bits, seed=seed, width_mult=width_mult,
        input_size=input_size, num_classes=num_classes,
    )
    return InferenceServer(engine, max_batch=max_batch, max_wait_ms=max_wait_ms)


def serve_fleet(
    models: dict[str, str | ArchSpec] | list[str],
    *,
    workers: int = 2,
    worker_kind: str = "thread",
    bits: int | None = None,
    seed: int | None = 0,
    width_mult: float | None = None,
    input_size: int | None = None,
    num_classes: int | None = None,
    max_batch: int = 8,
    max_queue: int = 64,
):
    """Compile ``models`` and stand up a multi-worker serving fleet.

    The production tier above :func:`serve_plan`: one
    :class:`repro.runtime.fleet.ServingFleet` hosts every compiled plan
    behind ``submit(model, x)`` — ``workers`` workers share each plan's
    baked weights through a single memmap, coalesce concurrent requests
    into per-model batches, reject on a bounded queue (``max_queue``), and
    shed deadline-expired requests before spending compute on them.

    Args:
        models: Either a mapping of serving name to zoo name/:class:`ArchSpec`,
            or a list of zoo names (each served under its own name).
        workers: Worker count.
        worker_kind: ``"thread"`` (in-process workers; overlap bounded by
            the GIL) or ``"process"`` (child processes cold-started from
            the shared weight memmaps: true core scaling, crash detection
            with ``WorkerCrashed``, automatic respawn).
        bits, seed, width_mult, input_size, num_classes: Compilation knobs,
            applied to every model (as in :func:`compile_model`).
        max_batch: Largest coalesced batch per worker pull.
        max_queue: Per-model admission bound (then ``QueueFull``).

    Use as a context manager so the workers are torn down::

        with api.serve_fleet(["EDD-CNN", "MobileNet-V2"], workers=4,
                             worker_kind="process",
                             width_mult=0.1, input_size=16) as fleet:
            logits = fleet.infer("EDD-CNN", x)
            print(fleet.stats()["fleet"])
    """
    from repro.runtime import compile_spec
    from repro.runtime.fleet import ServingFleet

    named = models if isinstance(models, dict) else {name: name for name in models}
    if not named:
        raise ValueError("serve_fleet needs at least one model")
    plans = {
        name: compile_spec(
            _runtime_spec(model, width_mult, input_size, num_classes),
            bits=bits, seed=seed,
        )
        for name, model in named.items()
    }
    return ServingFleet(
        plans, workers=workers, max_batch=max_batch, max_queue=max_queue,
        kind=worker_kind,
    )


@contextlib.contextmanager
def trace_session(chrome: str | Path | None = None,
                  jsonl: str | Path | None = None):
    """Trace everything inside the ``with`` block; write the files on exit.

    Installs a fresh enabled :class:`repro.obs.Tracer` as the process-global
    tracer, so every instrumented layer — :meth:`Engine.run
    <repro.runtime.engine.Engine.run>`, the co-search epoch loop and the
    serving fleet's request lifecycle — records spans into it.  On exit the
    previous tracer is restored and the collected events are written to
    ``chrome`` (Chrome trace-event JSON, loadable in ``chrome://tracing`` /
    Perfetto) and/or ``jsonl`` (one event per line), whichever are given.

    Yields the live tracer, so callers can add their own spans or counters::

        with api.trace_session(chrome="trace.json") as tracer:
            with tracer.span("my.block"):
                engine.run(x)

    Honours the ``REPRO_TRACE=0`` kill switch: tracing stays disabled, the
    block runs untraced, and no file is written.
    """
    from repro.obs import (
        Tracer,
        set_tracer,
        write_chrome_trace,
        write_jsonl_trace,
    )

    tracer = Tracer(enabled=True)
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
        if tracer.enabled:
            events = tracer.events()
            if chrome is not None:
                write_chrome_trace(events, chrome)
            if jsonl is not None:
                write_jsonl_trace(events, jsonl)
