"""Headless numerics benchmark suite (``repro bench``).

Measures the hot paths this library lives on and writes a machine-readable
``BENCH_numerics.json`` so the performance trajectory is tracked per PR:

* ``conv``      — conv2d forward+backward microbenchmarks over the supernet's
  actual workload shapes (MBConv expand/depthwise/project, stem, grouped);
* ``supernet``  — one bilevel weight step and one architecture step of
  :class:`repro.core.cosearch.EDDSearcher`;
* ``search``    — a small end-to-end ``repro.api.search()`` run, with the
  engine's per-phase wall-clock split.

Every section reports the *current* implementation next to a faithful
**pre-refactor baseline** emulated in-process: float64 tensor policy, the
original shift-and-accumulate convolutions (:func:`_reference_conv2d`), the
composite (unfused) BatchNorm and the composite straight-through
fake-quantisation — i.e. the hot path exactly as it was before the fast
numerics core landed.  Speedups are therefore measured in the same
environment on the same machine, as like-for-like as an in-repo harness can
make them.
"""

from __future__ import annotations

import contextlib
import json
import platform
import time
from pathlib import Path
from typing import Any, Callable, Iterator

import numpy as np

from repro.autograd import ops_nn
from repro.autograd.ops_basic import clip_ste, round_ste
from repro.autograd.tensor import Tensor, default_dtype, get_default_dtype, tensor

# (batch, c_in, h, w, c_out, kernel, stride, padding, groups) — the conv
# population of a supernet step at reduced scale ("r_") and at the paper's
# MBConv widths ("p_"), plus a grouped-conv case (where the old
# implementation looped over groups *and* offsets).
CONV_CASES: dict[str, tuple[int, ...]] = {
    "r_stem3x3_s2": (12, 3, 12, 12, 8, 3, 2, 1, 1),
    "r_expand1x1": (12, 16, 6, 6, 64, 1, 1, 0, 1),
    "r_dw3x3": (12, 64, 6, 6, 64, 3, 1, 1, 64),
    "r_dw5x5_s2": (12, 64, 6, 6, 64, 5, 2, 2, 64),
    "r_project1x1": (12, 64, 3, 3, 32, 1, 1, 0, 1),
    "p_expand1x1": (12, 16, 12, 12, 96, 1, 1, 0, 1),
    "p_dw3x3": (12, 96, 12, 12, 96, 3, 1, 1, 96),
    "p_dw5x5": (12, 96, 12, 12, 96, 5, 1, 2, 96),
    "p_project1x1": (12, 96, 12, 12, 32, 1, 1, 0, 1),
    "dense3x3": (16, 32, 14, 14, 64, 3, 1, 1, 1),
    "grouped3x3_g4": (16, 32, 14, 14, 64, 3, 1, 1, 4),
}


def _median_seconds(fn: Callable[[], Any], repeats: int, warmup: int = 2) -> float:
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


# ------------------------------------------------------- baseline emulation
def _composite_bn_forward(self, x):
    """The pre-refactor BatchNorm2d.forward (unfused autograd composite)."""
    if x.ndim != 4:
        raise ValueError(f"BatchNorm2d expects NCHW input, got {x.shape}")
    if self.training:
        batch_mean = x.data.mean(axis=(0, 2, 3))
        batch_var = x.data.var(axis=(0, 2, 3))
        self.running_mean = (
            (1.0 - self.momentum) * self.running_mean + self.momentum * batch_mean
        )
        self.running_var = (
            (1.0 - self.momentum) * self.running_var + self.momentum * batch_var
        )
        mean_t = x.mean(axis=(0, 2, 3), keepdims=True)
        centered = x - mean_t
        var_t = (centered * centered).mean(axis=(0, 2, 3), keepdims=True)
        inv_std = (var_t + self.eps) ** -0.5
        normalised = centered * inv_std
    else:
        mean = self.running_mean.reshape(1, -1, 1, 1)
        inv_std = 1.0 / np.sqrt(self.running_var.reshape(1, -1, 1, 1) + self.eps)
        normalised = (x - Tensor(mean)) * Tensor(inv_std)
    gamma = self.gamma.reshape(1, self.channels, 1, 1)
    beta = self.beta.reshape(1, self.channels, 1, 1)
    return normalised * gamma + beta


def _composite_fake_quantize(x, bits, max_abs=None):
    """The pre-refactor fake_quantize (clip_ste -> scale -> round_ste)."""
    if bits >= 32:
        return x
    if bits < 2:
        raise ValueError(f"cannot quantise to {bits} bits")
    if max_abs is None:
        max_abs = float(np.max(np.abs(x.data))) or 1.0
    if max_abs < 1e-30:
        return x
    levels = float(2 ** (bits - 1) - 1)
    scale = max_abs / levels
    clipped = clip_ste(x, -max_abs, max_abs)
    return round_ste(clipped * (1.0 / scale)) * scale


@contextlib.contextmanager
def pre_refactor_numerics() -> Iterator[None]:
    """Emulate the pre-refactor hot path: float64 policy, loop convolutions,
    composite BatchNorm and composite fake-quantisation."""
    import repro.nas.network as network
    import repro.nas.quantization as quantization
    import repro.nas.supernet as supernet
    from repro.nn.layers import BatchNorm2d

    # Every module that imported fake_quantize by value needs its own patch.
    quantize_holders = (quantization, supernet, network)
    saved_quantize = [m.fake_quantize for m in quantize_holders]
    saved = (ops_nn.conv2d, BatchNorm2d.forward)
    ops_nn.conv2d = ops_nn._reference_conv2d
    BatchNorm2d.forward = _composite_bn_forward
    for module in quantize_holders:
        module.fake_quantize = _composite_fake_quantize
    try:
        with default_dtype(np.float64):
            yield
    finally:
        ops_nn.conv2d, BatchNorm2d.forward = saved
        for module, original in zip(quantize_holders, saved_quantize):
            module.fake_quantize = original


# ------------------------------------------------------------------ sections
def bench_conv(quick: bool = False) -> dict[str, Any]:
    """Conv fwd+bwd per case: current vs pre-refactor, interleaved."""
    repeats = 5 if quick else 15
    rng = np.random.default_rng(2026)
    cases = []
    for name, (n, c_in, h, w, c_out, k, s, p, g) in CONV_CASES.items():
        x = rng.normal(size=(n, c_in, h, w))
        weight = rng.normal(size=(c_out, c_in // g, k, k))

        def fwd_bwd(conv_fn):
            xt = tensor(x, requires_grad=True)
            wt = tensor(weight, requires_grad=True)
            out = conv_fn(xt, wt, stride=s, padding=p, groups=g)
            out.backward(np.ones(out.shape, dtype=xt.data.dtype))

        current = _median_seconds(lambda: fwd_bwd(ops_nn.conv2d), repeats)

        def baseline_once():
            with default_dtype(np.float64):
                fwd_bwd(ops_nn._reference_conv2d)

        baseline = _median_seconds(baseline_once, max(3, repeats // 3))
        cases.append({
            "name": name,
            "shape": {"batch": n, "c_in": c_in, "hw": h, "c_out": c_out,
                      "kernel": k, "stride": s, "groups": g},
            "current_ms": current * 1e3,
            "baseline_ms": baseline * 1e3,
            "current_ops_per_sec": 1.0 / current,
            "speedup": baseline / current,
        })
    speedups = [c["speedup"] for c in cases]
    return {
        "cases": cases,
        "geomean_speedup": float(np.exp(np.mean(np.log(speedups)))),
        "total_speedup": float(
            sum(c["baseline_ms"] for c in cases) / sum(c["current_ms"] for c in cases)
        ),
    }


def _make_searcher():
    from repro.core.config import EDDConfig
    from repro.core.cosearch import EDDSearcher
    from repro.data.synthetic import SyntheticTaskConfig, make_synthetic_task
    from repro.nas.space import SearchSpaceConfig

    space = SearchSpaceConfig.reduced(num_blocks=3, num_classes=6, input_size=12)
    splits = make_synthetic_task(SyntheticTaskConfig(
        num_classes=6, image_size=12, train_per_class=16, val_per_class=8,
        test_per_class=8, seed=0,
    ))
    config = EDDConfig(target="fpga_pipelined", epochs=4, batch_size=12,
                       seed=0, arch_start_epoch=1)
    searcher = EDDSearcher(space, splits, config)
    searcher.calibrate_alpha()
    return searcher, splits


def bench_supernet_step(quick: bool = False) -> dict[str, Any]:
    """One bilevel weight step + one architecture step, current vs baseline."""
    repeats = 4 if quick else 10

    def measure():
        searcher, splits = _make_searcher()
        x, y = splits.train.images[:12], splits.train.labels[:12]
        xv, yv = splits.val.images[:12], splits.val.labels[:12]
        weight = _median_seconds(lambda: searcher.weight_step(x, y), repeats)
        arch = _median_seconds(lambda: searcher.arch_step(xv, yv), repeats)
        return weight, arch

    weight_now, arch_now = measure()
    with pre_refactor_numerics():
        weight_base, arch_base = measure()
    return {
        "weight_step_ms": weight_now * 1e3,
        "arch_step_ms": arch_now * 1e3,
        "baseline_weight_step_ms": weight_base * 1e3,
        "baseline_arch_step_ms": arch_base * 1e3,
        "weight_step_speedup": weight_base / weight_now,
        "arch_step_speedup": arch_base / arch_now,
        "weight_steps_per_sec": 1.0 / weight_now,
    }


def bench_search(quick: bool = False) -> dict[str, Any]:
    """End-to-end ``api.search()`` wall time, current vs baseline."""
    from repro import api

    request = api.SearchRequest(
        target="fpga_pipelined",
        epochs=2 if quick else 4,
        blocks=2 if quick else 3,
        seed=0,
        batch_size=12,
        arch_start_epoch=1,
        name="bench",
    )

    def run() -> tuple[float, dict | None]:
        start = time.perf_counter()
        report = api.search(request)
        return time.perf_counter() - start, report.result.phase_seconds

    wall_now, phases = run()
    with pre_refactor_numerics():
        wall_base, _ = run()
    return {
        "epochs": request.epochs,
        "blocks": request.blocks,
        "wall_seconds": wall_now,
        "baseline_wall_seconds": wall_base,
        "speedup": wall_base / wall_now,
        "phase_seconds": phases,
    }


def run_benchmarks(quick: bool = False) -> dict[str, Any]:
    """Run every section; returns the JSON-serialisable report."""
    return {
        "meta": {
            "quick": quick,
            "suite": "numerics",
            "dtype_policy": get_default_dtype().name,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "conv": bench_conv(quick),
        "supernet": bench_supernet_step(quick),
        "search": bench_search(quick),
    }


# ----------------------------------------------------- runtime bench suite
#: Reduced-scale geometry the runtime suite times the zoo at (full 224px
#: ImageNet shapes are not a single-CPU microbenchmark).
RUNTIME_BENCH_SCALE = {"width_mult": 0.25, "input_size": 32, "num_classes": 8}


def runtime_zoo_names() -> list[str]:
    """Zoo models the network builder (and thus the runtime) can instantiate."""
    from repro.baselines.model_zoo import buildable_models

    return buildable_models()


def bench_runtime(
    quick: bool = False, models: list[str] | None = None
) -> dict[str, Any]:
    """Engine.run vs ``BuiltNetwork.forward`` across the zoo at batch 1/8/32.

    The baseline is the only pre-runtime way to execute a derived spec: the
    eval-mode module forward, autograd graph and per-op allocations included.
    Each record carries both latencies, the speedup, the parity deviation
    (``max_abs_diff``) and the arena planner's footprint/reuse numbers; the
    headline is the geometric-mean batch-1 speedup across models.
    """
    from repro.autograd.tensor import Tensor
    from repro.baselines.model_zoo import get_model
    from repro.nas.arch_spec import scale_spec
    from repro.nas.network import build_network
    from repro.runtime import Engine, compile_spec

    batches = (1, 8) if quick else (1, 8, 32)
    repeats = 3 if quick else 7
    names = models if models is not None else runtime_zoo_names()
    rng = np.random.default_rng(7)
    records = []
    batch1_speedups = []
    for name in names:
        spec = scale_spec(get_model(name), **RUNTIME_BENCH_SCALE)
        net = build_network(spec, seed=0)
        # A couple of training-mode forwards give BN non-trivial running
        # stats, so the folded plan is exercised on realistic parameters.
        for _ in range(2):
            net(Tensor(rng.normal(size=(4, 3, spec.input_size, spec.input_size))))
        net.eval()
        engine = Engine(compile_spec(net))
        layout = engine.layout
        record: dict[str, Any] = {
            "name": name,
            "ops": len(engine.plan.ops),
            "arena_kib": engine.arena_bytes(1) / 1024.0,
            "arena_reuse": layout.reuse_factor,
            "arena_fragmentation": layout.fragmentation,
            "batches": [],
        }
        for batch in batches:
            x = rng.normal(size=(batch, 3, spec.input_size, spec.input_size))
            xt = Tensor(x)
            forward_s = _median_seconds(lambda: net(xt), repeats, warmup=1)
            engine_s = _median_seconds(lambda: engine.run(x), repeats, warmup=1)
            diff = float(np.max(np.abs(net(xt).data - engine.run(x))))
            speedup = forward_s / engine_s
            record["batches"].append({
                "batch": batch,
                "forward_ms": forward_s * 1e3,
                "engine_ms": engine_s * 1e3,
                "speedup": speedup,
                "max_abs_diff": diff,
            })
            if batch == 1:
                batch1_speedups.append(speedup)
        records.append(record)
    return {
        "scale": dict(RUNTIME_BENCH_SCALE),
        "batch_sizes": list(batches),
        "models": records,
        "geomean_batch1_speedup": float(
            np.exp(np.mean(np.log(batch1_speedups)))
        ) if batch1_speedups else float("nan"),
    }


def run_runtime_benchmarks(
    quick: bool = False, models: list[str] | None = None
) -> dict[str, Any]:
    """Run the runtime suite; returns the ``BENCH_runtime.json`` payload."""
    return {
        "meta": {
            "quick": quick,
            "suite": "runtime",
            "dtype_policy": get_default_dtype().name,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "runtime": bench_runtime(quick, models=models),
    }


def render_runtime_report(report: dict[str, Any]) -> str:
    """Human-readable summary of :func:`run_runtime_benchmarks` output."""
    section = report["runtime"]
    scale = section["scale"]
    lines = [
        f"runtime bench (dtype={report['meta']['dtype_policy']}, "
        f"width x{scale['width_mult']}, {scale['input_size']}px, "
        f"quick={report['meta']['quick']})",
        "",
        f"{'model':18s} {'batch':>5s} {'engine':>9s} {'forward':>9s} "
        f"{'speedup':>8s} {'max diff':>9s}",
    ]
    for record in section["models"]:
        for row in record["batches"]:
            lines.append(
                f"{record['name']:18s} {row['batch']:5d} "
                f"{row['engine_ms']:7.2f}ms {row['forward_ms']:7.2f}ms "
                f"{row['speedup']:7.1f}x {row['max_abs_diff']:9.1e}"
            )
        lines.append(
            f"{'':18s} arena {record['arena_kib']:.0f} KiB/sample, "
            f"reuse {record['arena_reuse']:.1f}x"
        )
    lines.append(
        f"\ngeomean batch-1 speedup: "
        f"{section['geomean_batch1_speedup']:.1f}x"
    )
    return "\n".join(lines)


def write_report(report: dict[str, Any], path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def render_report(report: dict[str, Any]) -> str:
    """Human-readable summary of :func:`run_benchmarks` output."""
    lines = [
        f"numerics bench (dtype={report['meta']['dtype_policy']}, "
        f"numpy {report['meta']['numpy']}, quick={report['meta']['quick']})",
        "",
        f"{'conv case':16s} {'current':>10s} {'baseline':>10s} {'speedup':>8s}",
    ]
    for case in report["conv"]["cases"]:
        lines.append(
            f"{case['name']:16s} {case['current_ms']:8.2f}ms "
            f"{case['baseline_ms']:8.2f}ms {case['speedup']:7.1f}x"
        )
    lines.append(
        f"{'geomean':16s} {'':>10s} {'':>10s} "
        f"{report['conv']['geomean_speedup']:7.1f}x"
    )
    sup = report["supernet"]
    lines += [
        "",
        f"supernet weight step {sup['weight_step_ms']:7.1f}ms "
        f"(baseline {sup['baseline_weight_step_ms']:.1f}ms, "
        f"{sup['weight_step_speedup']:.1f}x)",
        f"supernet arch step   {sup['arch_step_ms']:7.1f}ms "
        f"(baseline {sup['baseline_arch_step_ms']:.1f}ms, "
        f"{sup['arch_step_speedup']:.1f}x)",
    ]
    search = report["search"]
    lines.append(
        f"api.search ({search['epochs']} epochs, {search['blocks']} blocks) "
        f"{search['wall_seconds']:.2f}s (baseline "
        f"{search['baseline_wall_seconds']:.2f}s, {search['speedup']:.1f}x)"
    )
    if search.get("phase_seconds"):
        shares = ", ".join(
            f"{phase}={seconds:.2f}s"
            for phase, seconds in search["phase_seconds"].items()
        )
        lines.append(f"  engine phases: {shares}")
    return "\n".join(lines)
