"""Headless numerics benchmark suite (``repro bench``).

Measures the hot paths this library lives on and writes a machine-readable
``BENCH_numerics.json`` so the performance trajectory is tracked per PR:

* ``conv``      — conv2d forward+backward microbenchmarks over the supernet's
  actual workload shapes (MBConv expand/depthwise/project, stem, grouped);
* ``supernet``  — one bilevel weight step and one architecture step of
  :class:`repro.core.cosearch.EDDSearcher`;
* ``search``    — a small end-to-end ``repro.api.search()`` run, with the
  engine's per-phase wall-clock split.

Every section reports the *current* implementation next to a faithful
**pre-refactor baseline** emulated in-process: float64 tensor policy, the
original shift-and-accumulate convolutions (:func:`_reference_conv2d`), the
composite (unfused) BatchNorm and the composite straight-through
fake-quantisation — i.e. the hot path exactly as it was before the fast
numerics core landed.  Speedups are therefore measured in the same
environment on the same machine, as like-for-like as an in-repo harness can
make them.
"""

from __future__ import annotations

import contextlib
import gc
import json
import os
import platform
import time
import tracemalloc
from pathlib import Path
from typing import Any, Callable, Iterator

import numpy as np

from repro.autograd import ops_nn
from repro.autograd.ops_basic import clip_ste, round_ste
from repro.autograd.pool import buffer_pool, get_pool
from repro.autograd.tensor import Tensor, default_dtype, get_default_dtype, tensor

# (batch, c_in, h, w, c_out, kernel, stride, padding, groups) — the conv
# population of a supernet step at reduced scale ("r_") and at the paper's
# MBConv widths ("p_"), plus a grouped-conv case (where the old
# implementation looped over groups *and* offsets).
CONV_CASES: dict[str, tuple[int, ...]] = {
    "r_stem3x3_s2": (12, 3, 12, 12, 8, 3, 2, 1, 1),
    "r_expand1x1": (12, 16, 6, 6, 64, 1, 1, 0, 1),
    "r_dw3x3": (12, 64, 6, 6, 64, 3, 1, 1, 64),
    "r_dw5x5_s2": (12, 64, 6, 6, 64, 5, 2, 2, 64),
    "r_project1x1": (12, 64, 3, 3, 32, 1, 1, 0, 1),
    "p_expand1x1": (12, 16, 12, 12, 96, 1, 1, 0, 1),
    "p_dw3x3": (12, 96, 12, 12, 96, 3, 1, 1, 96),
    "p_dw5x5": (12, 96, 12, 12, 96, 5, 1, 2, 96),
    "p_project1x1": (12, 96, 12, 12, 32, 1, 1, 0, 1),
    "dense3x3": (16, 32, 14, 14, 64, 3, 1, 1, 1),
    "grouped3x3_g4": (16, 32, 14, 14, 64, 3, 1, 1, 4),
}


def _median_seconds(fn: Callable[[], Any], repeats: int, warmup: int = 2) -> float:
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


# ------------------------------------------------------- baseline emulation
def _composite_bn_forward(self, x):
    """The pre-refactor BatchNorm2d.forward (unfused autograd composite)."""
    if x.ndim != 4:
        raise ValueError(f"BatchNorm2d expects NCHW input, got {x.shape}")
    if self.training:
        batch_mean = x.data.mean(axis=(0, 2, 3))
        batch_var = x.data.var(axis=(0, 2, 3))
        self.running_mean = (
            (1.0 - self.momentum) * self.running_mean + self.momentum * batch_mean
        )
        self.running_var = (
            (1.0 - self.momentum) * self.running_var + self.momentum * batch_var
        )
        mean_t = x.mean(axis=(0, 2, 3), keepdims=True)
        centered = x - mean_t
        var_t = (centered * centered).mean(axis=(0, 2, 3), keepdims=True)
        inv_std = (var_t + self.eps) ** -0.5
        normalised = centered * inv_std
    else:
        mean = self.running_mean.reshape(1, -1, 1, 1)
        inv_std = 1.0 / np.sqrt(self.running_var.reshape(1, -1, 1, 1) + self.eps)
        normalised = (x - Tensor(mean)) * Tensor(inv_std)
    gamma = self.gamma.reshape(1, self.channels, 1, 1)
    beta = self.beta.reshape(1, self.channels, 1, 1)
    return normalised * gamma + beta


def _composite_fake_quantize(x, bits, max_abs=None):
    """The pre-refactor fake_quantize (clip_ste -> scale -> round_ste)."""
    if bits >= 32:
        return x
    if bits < 2:
        raise ValueError(f"cannot quantise to {bits} bits")
    if max_abs is None:
        max_abs = float(np.max(np.abs(x.data))) or 1.0
    if max_abs < 1e-30:
        return x
    levels = float(2 ** (bits - 1) - 1)
    scale = max_abs / levels
    clipped = clip_ste(x, -max_abs, max_abs)
    return round_ste(clipped * (1.0 / scale)) * scale


@contextlib.contextmanager
def pre_refactor_numerics() -> Iterator[None]:
    """Emulate the pre-refactor hot path: float64 policy, loop convolutions,
    composite BatchNorm and composite fake-quantisation."""
    import repro.nas.network as network
    import repro.nas.quantization as quantization
    import repro.nas.supernet as supernet
    from repro.nn.layers import BatchNorm2d

    # Every module that imported fake_quantize by value needs its own patch.
    quantize_holders = (quantization, supernet, network)
    saved_quantize = [m.fake_quantize for m in quantize_holders]
    saved = (ops_nn.conv2d, BatchNorm2d.forward)
    ops_nn.conv2d = ops_nn._reference_conv2d
    BatchNorm2d.forward = _composite_bn_forward
    for module in quantize_holders:
        module.fake_quantize = _composite_fake_quantize
    try:
        with default_dtype(np.float64):
            yield
    finally:
        ops_nn.conv2d, BatchNorm2d.forward = saved
        for module, original in zip(quantize_holders, saved_quantize):
            module.fake_quantize = original


# ------------------------------------------------------------------ sections
def bench_conv(quick: bool = False) -> dict[str, Any]:
    """Conv fwd+bwd per case: current vs pre-refactor, interleaved."""
    repeats = 5 if quick else 15
    rng = np.random.default_rng(2026)
    cases = []
    for name, (n, c_in, h, w, c_out, k, s, p, g) in CONV_CASES.items():
        x = rng.normal(size=(n, c_in, h, w))
        weight = rng.normal(size=(c_out, c_in // g, k, k))

        def fwd_bwd(conv_fn):
            xt = tensor(x, requires_grad=True)
            wt = tensor(weight, requires_grad=True)
            out = conv_fn(xt, wt, stride=s, padding=p, groups=g)
            out.backward(np.ones(out.shape, dtype=xt.data.dtype))

        current = _median_seconds(lambda: fwd_bwd(ops_nn.conv2d), repeats)

        def baseline_once():
            with default_dtype(np.float64):
                fwd_bwd(ops_nn._reference_conv2d)

        baseline = _median_seconds(baseline_once, max(3, repeats // 3))
        cases.append({
            "name": name,
            "shape": {"batch": n, "c_in": c_in, "hw": h, "c_out": c_out,
                      "kernel": k, "stride": s, "groups": g},
            "current_ms": current * 1e3,
            "baseline_ms": baseline * 1e3,
            "current_ops_per_sec": 1.0 / current,
            "speedup": baseline / current,
        })
    speedups = [c["speedup"] for c in cases]
    return {
        "cases": cases,
        "geomean_speedup": float(np.exp(np.mean(np.log(speedups)))),
        "total_speedup": float(
            sum(c["baseline_ms"] for c in cases) / sum(c["current_ms"] for c in cases)
        ),
    }


def _make_searcher():
    from repro.core.config import EDDConfig
    from repro.core.cosearch import EDDSearcher
    from repro.data.synthetic import SyntheticTaskConfig, make_synthetic_task
    from repro.nas.space import SearchSpaceConfig

    space = SearchSpaceConfig.reduced(num_blocks=3, num_classes=6, input_size=12)
    splits = make_synthetic_task(SyntheticTaskConfig(
        num_classes=6, image_size=12, train_per_class=16, val_per_class=8,
        test_per_class=8, seed=0,
    ))
    config = EDDConfig(target="fpga_pipelined", epochs=4, batch_size=12,
                       seed=0, arch_start_epoch=1)
    searcher = EDDSearcher(space, splits, config)
    searcher.calibrate_alpha()
    return searcher, splits


def bench_supernet_step(quick: bool = False) -> dict[str, Any]:
    """One bilevel weight step + one architecture step, current vs baseline."""
    repeats = 4 if quick else 10

    def measure():
        searcher, splits = _make_searcher()
        x, y = splits.train.images[:12], splits.train.labels[:12]
        xv, yv = splits.val.images[:12], splits.val.labels[:12]
        weight = _median_seconds(lambda: searcher.weight_step(x, y), repeats)
        arch = _median_seconds(lambda: searcher.arch_step(xv, yv), repeats)
        return weight, arch

    weight_now, arch_now = measure()
    with pre_refactor_numerics():
        weight_base, arch_base = measure()
    return {
        "weight_step_ms": weight_now * 1e3,
        "arch_step_ms": arch_now * 1e3,
        "baseline_weight_step_ms": weight_base * 1e3,
        "baseline_arch_step_ms": arch_base * 1e3,
        "weight_step_speedup": weight_base / weight_now,
        "arch_step_speedup": arch_base / arch_now,
        "weight_steps_per_sec": 1.0 / weight_now,
    }


def bench_search(quick: bool = False) -> dict[str, Any]:
    """End-to-end ``api.search()`` wall time, current vs baseline."""
    from repro import api

    request = api.SearchRequest(
        target="fpga_pipelined",
        epochs=2 if quick else 4,
        blocks=2 if quick else 3,
        seed=0,
        batch_size=12,
        arch_start_epoch=1,
        name="bench",
    )

    def run() -> tuple[float, dict | None]:
        start = time.perf_counter()
        report = api.search(request)
        return time.perf_counter() - start, report.result.phase_seconds

    wall_now, phases = run()
    with pre_refactor_numerics():
        wall_base, _ = run()
    return {
        "epochs": request.epochs,
        "blocks": request.blocks,
        "wall_seconds": wall_now,
        "baseline_wall_seconds": wall_base,
        "speedup": wall_base / wall_now,
        "phase_seconds": phases,
    }


def run_benchmarks(quick: bool = False) -> dict[str, Any]:
    """Run every section; returns the JSON-serialisable report."""
    return {
        "meta": {
            "quick": quick,
            "suite": "numerics",
            "dtype_policy": get_default_dtype().name,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "conv": bench_conv(quick),
        "supernet": bench_supernet_step(quick),
        "search": bench_search(quick),
    }


# ----------------------------------------------------- runtime bench suite
#: Reduced-scale geometry the runtime suite times the zoo at (full 224px
#: ImageNet shapes are not a single-CPU microbenchmark).
RUNTIME_BENCH_SCALE = {"width_mult": 0.25, "input_size": 32, "num_classes": 8}


def runtime_zoo_names() -> list[str]:
    """Zoo models the network builder (and thus the runtime) can instantiate."""
    from repro.baselines.model_zoo import buildable_models

    return buildable_models()


def bench_runtime(
    quick: bool = False, models: list[str] | None = None
) -> dict[str, Any]:
    """Engine.run vs ``BuiltNetwork.forward`` across the zoo at batch 1/8/32.

    The baseline is the only pre-runtime way to execute a derived spec: the
    eval-mode module forward, autograd graph and per-op allocations included.
    Each record carries both latencies, the speedup, the parity deviation
    (``max_abs_diff``) and the arena planner's footprint/reuse numbers; the
    headline is the geometric-mean batch-1 speedup across models.
    """
    from repro.autograd.tensor import Tensor
    from repro.baselines.model_zoo import get_model
    from repro.nas.arch_spec import scale_spec
    from repro.nas.network import build_network
    from repro.runtime import Engine, compile_spec

    batches = (1, 8) if quick else (1, 8, 32)
    repeats = 3 if quick else 7
    names = models if models is not None else runtime_zoo_names()
    rng = np.random.default_rng(7)
    records = []
    batch1_speedups = []
    for name in names:
        spec = scale_spec(get_model(name), **RUNTIME_BENCH_SCALE)
        net = build_network(spec, seed=0)
        # A couple of training-mode forwards give BN non-trivial running
        # stats, so the folded plan is exercised on realistic parameters.
        for _ in range(2):
            net(Tensor(rng.normal(size=(4, 3, spec.input_size, spec.input_size))))
        net.eval()
        engine = Engine(compile_spec(net))
        layout = engine.layout
        record: dict[str, Any] = {
            "name": name,
            "ops": len(engine.plan.ops),
            "arena_kib": engine.arena_bytes(1) / 1024.0,
            "arena_reuse": layout.reuse_factor,
            "arena_fragmentation": layout.fragmentation,
            "batches": [],
        }
        for batch in batches:
            x = rng.normal(size=(batch, 3, spec.input_size, spec.input_size))
            xt = Tensor(x)
            forward_s = _median_seconds(lambda: net(xt), repeats, warmup=1)
            engine_s = _median_seconds(lambda: engine.run(x), repeats, warmup=1)
            diff = float(np.max(np.abs(net(xt).data - engine.run(x))))
            speedup = forward_s / engine_s
            record["batches"].append({
                "batch": batch,
                "forward_ms": forward_s * 1e3,
                "engine_ms": engine_s * 1e3,
                "speedup": speedup,
                "max_abs_diff": diff,
            })
            if batch == 1:
                batch1_speedups.append(speedup)
        records.append(record)
    return {
        "scale": dict(RUNTIME_BENCH_SCALE),
        "batch_sizes": list(batches),
        "models": records,
        "geomean_batch1_speedup": float(
            np.exp(np.mean(np.log(batch1_speedups)))
        ) if batch1_speedups else float("nan"),
    }


def run_runtime_benchmarks(
    quick: bool = False, models: list[str] | None = None
) -> dict[str, Any]:
    """Run the runtime suite; returns the ``BENCH_runtime.json`` payload."""
    return {
        "meta": {
            "quick": quick,
            "suite": "runtime",
            "dtype_policy": get_default_dtype().name,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "runtime": bench_runtime(quick, models=models),
    }


def render_runtime_report(report: dict[str, Any]) -> str:
    """Human-readable summary of :func:`run_runtime_benchmarks` output."""
    section = report["runtime"]
    scale = section["scale"]
    lines = [
        f"runtime bench (dtype={report['meta']['dtype_policy']}, "
        f"width x{scale['width_mult']}, {scale['input_size']}px, "
        f"quick={report['meta']['quick']})",
        "",
        f"{'model':18s} {'batch':>5s} {'engine':>9s} {'forward':>9s} "
        f"{'speedup':>8s} {'max diff':>9s}",
    ]
    for record in section["models"]:
        for row in record["batches"]:
            lines.append(
                f"{record['name']:18s} {row['batch']:5d} "
                f"{row['engine_ms']:7.2f}ms {row['forward_ms']:7.2f}ms "
                f"{row['speedup']:7.1f}x {row['max_abs_diff']:9.1e}"
            )
        lines.append(
            f"{'':18s} arena {record['arena_kib']:.0f} KiB/sample, "
            f"reuse {record['arena_reuse']:.1f}x"
        )
    lines.append(
        f"\ngeomean batch-1 speedup: "
        f"{section['geomean_batch1_speedup']:.1f}x"
    )
    return "\n".join(lines)


# ---------------------------------------------------- training bench suite
#
# ``repro bench --suite training`` -> BENCH_training.json.  The *pre-PR
# baseline* for every section is the hot path exactly as PR 2/3 left it:
# buffer pool disabled and stride>1 transposed-conv input gradients through
# the dilate-then-correlate oracle.  The *current* path enables the pool and
# the phase-decomposed gradients, i.e. the two training-side optimisations
# this suite exists to track.

#: (batch, c_in, h/w, c_out, kernel, stride, padding, groups, small) — the
#: supernet's training conv population: search scale ("r_"), paper MBConv
#: widths ("p_"), and retrain-scale batch-32 cases ("t_").  ``small`` marks
#: the allocation-bound small-shape set the headline geomean covers.
TRAINING_CONV_CASES: dict[str, tuple[int, int, int, int, int, int, int, int, bool]] = {
    "r_expand1x1": (12, 16, 6, 64, 1, 1, 0, 1, True),
    "r_dw3x3": (12, 64, 6, 64, 3, 1, 1, 64, True),
    "r_dw5x5_s2": (12, 64, 6, 64, 5, 2, 2, 64, True),
    "r_stem3x3_s2": (12, 3, 12, 8, 3, 2, 1, 1, True),
    "p_expand1x1": (12, 16, 12, 96, 1, 1, 0, 1, True),
    "p_dw3x3": (12, 96, 12, 96, 3, 1, 1, 96, True),
    "p_dw5x5": (12, 96, 12, 96, 5, 1, 2, 96, True),
    "p_dw3x3_s2": (12, 96, 12, 96, 3, 2, 1, 96, True),
    "p_dw5x5_s2": (12, 96, 12, 96, 5, 2, 2, 96, True),
    "p_project1x1": (12, 96, 12, 32, 1, 1, 0, 1, True),
    "t_dw5x5_s2_b32": (32, 96, 14, 96, 5, 2, 2, 96, False),
    "t_dense3x3_s2_b32": (32, 32, 14, 64, 3, 2, 1, 1, False),
}

#: (batch, c_in, c_out, h, kernel, stride, groups) — stride>1 input-gradient
#: kernels timed head-to-head: phase decomposition vs the dilated oracle.
TCONV_GRAD_CASES: dict[str, tuple[int, int, int, int, int, int, int]] = {
    "dw3x3_s2": (12, 64, 64, 12, 3, 2, 64),
    "dw5x5_s2": (12, 64, 64, 12, 5, 2, 64),
    "dense3x3_s2": (16, 32, 64, 14, 3, 2, 1),
    "dense3x3_s3": (16, 32, 64, 15, 3, 3, 1),
    "dw5x5_s2_b32": (32, 96, 96, 14, 5, 2, 96),
}


@contextlib.contextmanager
def _dilated_input_grads() -> Iterator[None]:
    """Force stride>1 input gradients through the pre-PR dilated oracle."""
    original = ops_nn._conv_input_grad

    def dilated(grad, w_data, x_shape, stride, groups):
        return ops_nn._conv_input_grad_dilated(grad, w_data, x_shape, stride, groups)

    ops_nn._conv_input_grad = dilated
    try:
        yield
    finally:
        ops_nn._conv_input_grad = original


def bench_training_conv(quick: bool = False) -> dict[str, Any]:
    """Conv fwd+bwd per training case: pooled+phased vs the pre-PR baseline.

    Each case runs a leaf-to-scalar step (persistent parameter-style leaves,
    ``zero_grad`` per iteration, scalar root) so the measurement matches the
    training loop's buffer lifecycle.  The headline is the geometric-mean
    speedup over the small-shape (``small=True``) set ROADMAP calls
    allocation-bound, with the full-set geomean reported alongside.
    """
    repeats = 6 if quick else 15
    rng = np.random.default_rng(2026)
    cases = []
    for name, (n, c_in, h, c_out, k, s, p, g, small) in TRAINING_CONV_CASES.items():
        if quick and not small:
            continue
        xt = tensor(rng.normal(size=(n, c_in, h, h)), requires_grad=True)
        wt = tensor(rng.normal(size=(c_out, c_in // g, k, k)), requires_grad=True)

        def fwd_bwd():
            xt.zero_grad()
            wt.zero_grad()
            out = ops_nn.conv2d(xt, wt, stride=s, padding=p, groups=g)
            out.sum().backward()

        reps = max(3, repeats // 2) if n >= 32 else repeats
        # Interleave baseline/current samples so allocator drift and box
        # noise hit both sides equally.
        with _dilated_input_grads(), buffer_pool(False):
            fwd_bwd()
        with buffer_pool(True):
            fwd_bwd()
        base_samples, cur_samples = [], []
        for _ in range(reps):
            with _dilated_input_grads(), buffer_pool(False):
                start = time.perf_counter()
                fwd_bwd()
                base_samples.append(time.perf_counter() - start)
            with buffer_pool(True):
                start = time.perf_counter()
                fwd_bwd()
                cur_samples.append(time.perf_counter() - start)
        baseline = float(np.median(base_samples))
        current = float(np.median(cur_samples))
        xt.zero_grad()
        wt.zero_grad()
        cases.append({
            "name": name,
            "small": small,
            "shape": {"batch": n, "c_in": c_in, "hw": h, "c_out": c_out,
                      "kernel": k, "stride": s, "groups": g},
            "current_ms": current * 1e3,
            "baseline_ms": baseline * 1e3,
            "speedup": baseline / current,
        })
    small_speedups = [c["speedup"] for c in cases if c["small"]]
    all_speedups = [c["speedup"] for c in cases]
    return {
        "cases": cases,
        "geomean_speedup_small": float(np.exp(np.mean(np.log(small_speedups)))),
        "geomean_speedup": float(np.exp(np.mean(np.log(all_speedups)))),
    }


def bench_tconv_grad(quick: bool = False) -> dict[str, Any]:
    """Stride>1 transposed-conv input-grad kernels: phased vs dilated oracle.

    This is the kernel-level view of the phase decomposition — the same
    gradient computed both ways on identical inputs, plus the parity error
    (summation-order tolerance only).
    """
    repeats = 8 if quick else 20
    rng = np.random.default_rng(7)
    cases = []
    for name, (n, c_in, c_out, h, k, s, g) in TCONV_GRAD_CASES.items():
        if quick and n >= 32:
            continue
        out_h = (h - k) // s + 1
        grad = rng.normal(size=(n, c_out, out_h, out_h)).astype(get_default_dtype())
        weight = rng.normal(size=(c_out, c_in // g, k, k)).astype(get_default_dtype())
        x_shape = (n, c_in, h, h)
        reps = max(3, repeats // 2) if n >= 32 else repeats
        dilated = _median_seconds(
            lambda: ops_nn._conv_input_grad_dilated(grad, weight, x_shape, s, g),
            reps,
        )
        phased = _median_seconds(
            lambda: ops_nn._conv_input_grad_phased(grad, weight, x_shape, s, g),
            reps,
        )
        diff = float(np.max(np.abs(
            ops_nn._conv_input_grad_phased(grad, weight, x_shape, s, g)
            - ops_nn._conv_input_grad_dilated(grad, weight, x_shape, s, g)
        )))
        cases.append({
            "name": name,
            "stride": s,
            "kernel": k,
            "dilated_ms": dilated * 1e3,
            "phased_ms": phased * 1e3,
            "speedup": dilated / phased,
            "max_abs_diff": diff,
        })
    speedups = [c["speedup"] for c in cases]
    return {
        "cases": cases,
        "geomean_speedup": float(np.exp(np.mean(np.log(speedups)))),
    }


def _large_repro_blocks(snapshot: "tracemalloc.Snapshot", min_bytes: int) -> int:
    """Count live traced blocks >= ``min_bytes`` allocated in repro code."""
    count = 0
    for trace in snapshot.traces:
        if trace.size < min_bytes:
            continue
        frame = trace.traceback[0]
        if "repro" in frame.filename:
            count += 1
    return count


def _step_allocation_profile(searcher, x, y, pool_on: bool) -> dict[str, float]:
    """Measure one weight step's heap behaviour under ``tracemalloc``.

    Reported per step:

    * ``forward_alloc_blocks`` — buffer-sized (>= 2 KiB) blocks allocated in
      repro code during the forward that are still live when the graph is
      complete; with the pool warm these come from free lists instead, so
      the count is the direct measure of the "allocation-free" claim;
    * ``peak_bytes`` — peak incremental traced memory over the full
      forward+backward+update step.
    """
    from repro.nn.functional import cross_entropy

    min_bytes = 2048
    with buffer_pool(pool_on):
        # Warm the pool and the allocator alike: every step Gumbel-samples a
        # different candidate, so several steps are needed before the free
        # lists cover the whole shape population.
        for _ in range(6):
            searcher.weight_step(x, y)
        searcher.weight_optimizer.zero_grad()
        searcher.arch_optimizer.zero_grad()
        gc.collect()
        tracemalloc.start(1)
        try:
            base = tracemalloc.take_snapshot()
            sample = searcher.supernet.sample(
                searcher.sampler, hard=searcher.config.hard_weight_step
            )
            logits = searcher.supernet(Tensor(x), sample=sample)
            loss = cross_entropy(logits, y)
            snap = tracemalloc.take_snapshot()
            tracemalloc.reset_peak()
            before_current, _ = tracemalloc.get_traced_memory()
            loss.backward()
            searcher.weight_optimizer.step()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        forward_blocks = (
            _large_repro_blocks(snap, min_bytes)
            - _large_repro_blocks(base, min_bytes)
        )
        searcher.weight_optimizer.zero_grad()
        searcher.arch_optimizer.zero_grad()
    return {
        "forward_alloc_blocks": int(forward_blocks),
        "peak_bytes": int(max(0, peak - before_current)),
    }


def bench_training_step(quick: bool = False) -> dict[str, Any]:
    """Supernet weight/arch step wall clock and allocation counts, pool
    on vs off (pool on/off samples interleaved round-robin on one searcher
    so box noise cancels; ``loss_parity`` is checked on two fresh searchers
    driven through identical step sequences)."""
    repeats = 6 if quick else 16

    searcher, splits = _make_searcher()
    x, y = splits.train.images[:12], splits.train.labels[:12]
    xv, yv = splits.val.images[:12], splits.val.labels[:12]
    for pool_on in (False, True):  # warm both modes
        with buffer_pool(pool_on):
            searcher.weight_step(x, y)
            searcher.arch_step(xv, yv)
    samples: dict[tuple[str, bool], list[float]] = {
        (phase, mode): [] for phase in ("weight", "arch") for mode in (False, True)
    }
    for _ in range(repeats):
        for pool_on in (False, True):
            with buffer_pool(pool_on):
                start = time.perf_counter()
                searcher.weight_step(x, y)
                samples[("weight", pool_on)].append(time.perf_counter() - start)
                start = time.perf_counter()
                searcher.arch_step(xv, yv)
                samples[("arch", pool_on)].append(time.perf_counter() - start)
    weight_off = float(np.median(samples[("weight", False)]))
    weight_on = float(np.median(samples[("weight", True)]))
    arch_off = float(np.median(samples[("arch", False)]))
    arch_on = float(np.median(samples[("arch", True)]))

    def parity_losses(pool_on: bool) -> list[float]:
        fresh, fresh_splits = _make_searcher()
        px, py = fresh_splits.train.images[:12], fresh_splits.train.labels[:12]
        with buffer_pool(pool_on):
            return [fresh.weight_step(px, py) for _ in range(3)]

    losses_off = parity_losses(False)
    losses_on = parity_losses(True)
    allocs_off = _step_allocation_profile(searcher, x, y, False)
    allocs_on = _step_allocation_profile(searcher, x, y, True)
    pool_stats = get_pool().stats()
    blocks_on = max(1, allocs_on["forward_alloc_blocks"])
    return {
        "weight_step_ms": weight_on * 1e3,
        "arch_step_ms": arch_on * 1e3,
        "baseline_weight_step_ms": weight_off * 1e3,
        "baseline_arch_step_ms": arch_off * 1e3,
        "weight_step_speedup": weight_off / weight_on,
        "arch_step_speedup": arch_off / arch_on,
        "loss_parity": losses_off == losses_on,
        "allocations": {
            "pool_off": allocs_off,
            "pool_on": allocs_on,
            "forward_alloc_reduction": (
                allocs_off["forward_alloc_blocks"] / blocks_on
            ),
        },
        "pool": pool_stats,
    }


def bench_training_search(quick: bool = False) -> dict[str, Any]:
    """End-to-end ``api.search`` epoch, pool on vs off (env kill-switch).

    Both runs share the request and seed, so the epoch histories must be
    bit-identical (``loss_parity``); the timing difference is purely the
    buffer pool's doing.
    """
    from repro import api

    request = api.SearchRequest(
        target="fpga_pipelined",
        epochs=2 if quick else 4,
        blocks=2 if quick else 3,
        seed=0,
        batch_size=12,
        arch_start_epoch=1,
        name="bench-training",
    )

    def run() -> tuple[float, list[float]]:
        start = time.perf_counter()
        report = api.search(request)
        wall = time.perf_counter() - start
        return wall, [
            (r.train_loss, r.val_acc_loss, r.total_loss)
            for r in report.result.history
        ]

    @contextlib.contextmanager
    def pool_killed():
        saved = os.environ.get("REPRO_BUFFER_POOL")
        os.environ["REPRO_BUFFER_POOL"] = "0"
        try:
            yield
        finally:
            if saved is None:
                os.environ.pop("REPRO_BUFFER_POOL", None)
            else:
                os.environ["REPRO_BUFFER_POOL"] = saved

    rounds = 2  # alternate off/on twice even in quick mode: a single
    # sample per mode is one noise spike away from a false regression.
    walls_off, walls_on = [], []
    history_off = history_on = None
    for _ in range(rounds):  # alternate modes so drift cancels
        with pool_killed():
            wall, history_off = run()
        walls_off.append(wall)
        wall, history_on = run()
        walls_on.append(wall)
    wall_off = float(np.median(walls_off))
    wall_on = float(np.median(walls_on))

    def _same(a, b):
        return all(
            x == y or (np.isnan(x) and np.isnan(y))
            for ra, rb in zip(a, b) for x, y in zip(ra, rb)
        )

    return {
        "epochs": request.epochs,
        "blocks": request.blocks,
        "wall_seconds": wall_on,
        "baseline_wall_seconds": wall_off,
        "epoch_seconds": wall_on / request.epochs,
        "baseline_epoch_seconds": wall_off / request.epochs,
        "speedup": wall_off / wall_on,
        "loss_parity": len(history_off) == len(history_on)
        and _same(history_off, history_on),
    }


def run_training_benchmarks(quick: bool = False) -> dict[str, Any]:
    """Run the training suite; returns the ``BENCH_training.json`` payload."""
    return {
        "meta": {
            "quick": quick,
            "suite": "training",
            "dtype_policy": get_default_dtype().name,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "conv": bench_training_conv(quick),
        "tconv_grad": bench_tconv_grad(quick),
        "step": bench_training_step(quick),
        "search": bench_training_search(quick),
    }


def render_training_report(report: dict[str, Any]) -> str:
    """Human-readable summary of :func:`run_training_benchmarks` output."""
    lines = [
        f"training bench (dtype={report['meta']['dtype_policy']}, "
        f"numpy {report['meta']['numpy']}, quick={report['meta']['quick']})",
        "",
        f"{'conv case':20s} {'current':>10s} {'pre-PR':>10s} {'speedup':>8s}",
    ]
    for case in report["conv"]["cases"]:
        lines.append(
            f"{case['name']:20s} {case['current_ms']:8.2f}ms "
            f"{case['baseline_ms']:8.2f}ms {case['speedup']:7.2f}x"
        )
    lines.append(
        f"{'geomean (small set)':20s} {'':>10s} {'':>10s} "
        f"{report['conv']['geomean_speedup_small']:7.2f}x"
    )
    lines.append(
        f"{'geomean (all)':20s} {'':>10s} {'':>10s} "
        f"{report['conv']['geomean_speedup']:7.2f}x"
    )
    lines += ["", f"{'tconv grad case':20s} {'phased':>10s} {'dilated':>10s} {'speedup':>8s}"]
    for case in report["tconv_grad"]["cases"]:
        lines.append(
            f"{case['name']:20s} {case['phased_ms']:8.2f}ms "
            f"{case['dilated_ms']:8.2f}ms {case['speedup']:7.2f}x"
        )
    step = report["step"]
    allocs = step["allocations"]
    lines += [
        "",
        f"weight step {step['weight_step_ms']:7.1f}ms "
        f"(pool off {step['baseline_weight_step_ms']:.1f}ms, "
        f"{step['weight_step_speedup']:.2f}x)  loss parity: {step['loss_parity']}",
        f"arch step   {step['arch_step_ms']:7.1f}ms "
        f"(pool off {step['baseline_arch_step_ms']:.1f}ms, "
        f"{step['arch_step_speedup']:.2f}x)",
        f"forward allocations: {allocs['pool_off']['forward_alloc_blocks']} -> "
        f"{allocs['pool_on']['forward_alloc_blocks']} blocks "
        f"({allocs['forward_alloc_reduction']:.1f}x fewer); "
        f"step peak {allocs['pool_off']['peak_bytes'] / 2**20:.1f} -> "
        f"{allocs['pool_on']['peak_bytes'] / 2**20:.1f} MiB",
        f"pool: {step['pool']['hits']} hits / {step['pool']['misses']} misses, "
        f"{step['pool']['pooled_bytes'] / 2**20:.1f} MiB parked",
    ]
    search = report["search"]
    lines.append(
        f"api.search ({search['epochs']} epochs, {search['blocks']} blocks) "
        f"{search['epoch_seconds']:.2f}s/epoch (pool off "
        f"{search['baseline_epoch_seconds']:.2f}s/epoch, "
        f"{search['speedup']:.2f}x)  loss parity: {search['loss_parity']}"
    )
    return "\n".join(lines)


# ---------------------------------------------------- serving bench suite
#
# ``repro bench --suite serving`` -> BENCH_serving.json: replay deterministic
# open-loop traffic (Poisson steady load + bursts) against a ServingFleet at
# increasing worker counts, measuring served throughput, tail latency per
# model, admission-control behaviour (rejected/shed) and the weight-sharing
# memory ledger.  Offered load is calibrated from the measured single-engine
# batched throughput so the 1-worker fleet saturates — scaling headroom is
# then visible as served throughput, not hidden by an idle fleet.

SERVING_BENCH_SCALE = {"width_mult": 0.25, "input_size": 16, "num_classes": 8}


def bench_serving(
    quick: bool = False,
    workers_sweep: list[int] | None = None,
    kinds: tuple[str, ...] = ("thread", "process"),
) -> dict[str, Any]:
    """Traffic-replay serving benchmark: throughput/latency vs worker count.

    Sweeps the worker count for each worker tier in ``kinds`` (thread
    workers overlap only while BLAS releases the GIL; process workers own
    whole cores) and reports per-tier scaling plus a process-vs-thread
    comparison at the largest sweep point.
    """
    from repro.baselines.model_zoo import get_model
    from repro.nas.arch_spec import scale_spec
    from repro.runtime import Engine, compile_spec
    from repro.runtime.fleet import (
        ServingFleet,
        burst_trace,
        merge_traces,
        poisson_trace,
        replay,
    )

    names = runtime_zoo_names()[:2]
    max_batch = 8
    duration_s = 0.4 if quick else 1.5
    if workers_sweep is None:
        workers_sweep = [1, 2] if quick else [1, 2, 4]

    plans = {}
    inputs = {}
    arena_bytes = {}
    rng = np.random.default_rng(11)
    for name in names:
        spec = scale_spec(get_model(name), **SERVING_BENCH_SCALE)
        plans[name] = compile_spec(spec, seed=0)
        inputs[name] = rng.normal(
            size=(3, spec.input_size, spec.input_size)
        )
        arena_bytes[name] = Engine(plans[name]).arena_bytes(max_batch)

    # Calibrate offered load: measure each model's batched engine throughput
    # and offer ~75% of one worker's aggregate capacity per model, so two
    # tenants together oversubscribe a single worker by ~1.5x.
    rates = {}
    for name in names:
        engine = Engine(plans[name])
        batch = np.stack([inputs[name]] * max_batch)
        batch_s = _median_seconds(lambda: engine.run(batch), 3, warmup=1)
        rates[name] = 0.75 * max_batch / batch_s

    trace = merge_traces(*(
        [poisson_trace(name, rates[name], duration_s, seed=index)
         for index, name in enumerate(names)]
        + [burst_trace(name, bursts=2, burst_size=2 * max_batch,
                       gap_s=duration_s / 2)
           for name in names]
    ))

    tiers: dict[str, Any] = {}
    for kind in kinds:
        runs = []
        for workers in workers_sweep:
            with ServingFleet(
                plans, workers=workers, max_batch=max_batch, kind=kind
            ) as fleet:
                # Warm-up: every worker builds its engines before measuring
                # (process workers also pay their cold start here).
                warm = merge_traces(*(
                    [burst_trace(name, bursts=1, burst_size=workers * 2,
                                 gap_s=1.0)
                     for name in names]
                ))
                warm_record = replay(fleet, warm, inputs)
                record = replay(fleet, trace, inputs)
                stats = fleet.stats()
            per_model_p99 = {
                name: block["latency_ms"]["p99"]
                for name, block in record.get("per_model", {}).items()
            }
            shared = stats["weights"]["shared_bytes"]
            runs.append({
                "workers": workers,
                "kind": kind,
                "throughput_rps": record["throughput_rps"],
                "replay": record,
                "per_model_p99_ms": per_model_p99,
                "mean_batch": float(np.mean([
                    block["mean_batch"] for block in stats["models"].values()
                    if "mean_batch" in block
                ])),
                "warmup_requests": warm_record["completed"],
                "memory": {
                    "weights_shared_bytes": shared,
                    "weights_unshared_bytes": shared * workers,
                    "arena_bytes_per_worker": sum(arena_bytes.values()),
                    "est_fleet_bytes": shared
                    + workers * sum(arena_bytes.values()),
                },
            })
        base = runs[0]["throughput_rps"]
        tiers[kind] = {
            "runs": runs,
            "throughput_scaling_vs_1_worker": {
                str(run["workers"]): (
                    run["throughput_rps"] / base if base else 0.0
                )
                for run in runs
            },
        }
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cpus = os.cpu_count() or 1
    out: dict[str, Any] = {
        "scale": dict(SERVING_BENCH_SCALE),
        "models": names,
        "max_batch": max_batch,
        "duration_s": duration_s,
        "offered_rps": {name: rates[name] for name in names},
        "trace_events": len(trace),
        "kinds": list(kinds),
        "tiers": tiers,
        "host_cpus": cpus,
    }
    if len(tiers) > 1:
        top = str(max(workers_sweep))
        thread_top = tiers["thread"]["throughput_scaling_vs_1_worker"][top]
        process_top = tiers["process"]["throughput_scaling_vs_1_worker"][top]
        out["process_vs_thread_scaling_at_max_workers"] = (
            process_top / thread_top if thread_top else 0.0
        )
    if cpus < max(workers_sweep):
        out["note"] = (
            f"host exposes {cpus} CPU(s); worker counts beyond that cannot "
            "scale throughput here for either tier — thread workers overlap "
            "only when numpy kernels run on distinct cores (BLAS releases "
            "the GIL), and process workers still share the one core while "
            "paying pipe IPC per batch.  The process tier's scaling claim "
            "is only measurable on a multi-core host."
        )
    return out


def run_serving_benchmarks(
    quick: bool = False, workers_sweep: list[int] | None = None
) -> dict[str, Any]:
    """Run the serving suite; returns the ``BENCH_serving.json`` payload."""
    return {
        "meta": {
            "quick": quick,
            "suite": "serving",
            "dtype_policy": get_default_dtype().name,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "serving": bench_serving(quick, workers_sweep=workers_sweep),
    }


def render_serving_report(report: dict[str, Any]) -> str:
    """Human-readable summary of :func:`run_serving_benchmarks` output."""
    section = report["serving"]
    lines = [
        f"serving bench (models {', '.join(section['models'])}, "
        f"max_batch {section['max_batch']}, "
        f"{section['trace_events']} events over {section['duration_s']:.1f}s, "
        f"host cpus {section['host_cpus']}, quick={report['meta']['quick']})",
    ]
    last = None
    for kind in section["kinds"]:
        tier = section["tiers"][kind]
        lines += [
            "",
            f"[{kind} workers]",
            f"{'workers':>7s} {'served rps':>11s} {'scaling':>8s} "
            f"{'p50':>8s} {'p99':>8s} {'rej':>5s} {'shed':>5s} {'batch':>6s}",
        ]
        for run in tier["runs"]:
            replay_rec = run["replay"]
            lat = replay_rec.get("latency_ms", {})
            scaling = tier["throughput_scaling_vs_1_worker"][
                str(run["workers"])
            ]
            lines.append(
                f"{run['workers']:7d} {run['throughput_rps']:11.1f} "
                f"{scaling:7.2f}x {lat.get('p50', float('nan')):7.2f} "
                f"{lat.get('p99', float('nan')):7.2f} "
                f"{replay_rec['rejected']:5d} {replay_rec['shed']:5d} "
                f"{run['mean_batch']:6.2f}"
            )
        last = tier["runs"][-1]
    memory = last["memory"]
    lines.append(
        f"\nweights: {memory['weights_shared_bytes'] / 1024:.0f} KiB mapped "
        f"once (vs {memory['weights_unshared_bytes'] / 1024:.0f} KiB "
        f"unshared at {last['workers']} workers); arenas "
        f"{memory['arena_bytes_per_worker'] / 1024:.0f} KiB/worker"
    )
    for name, p99 in sorted(last["per_model_p99_ms"].items()):
        lines.append(f"p99[{name}] @ {last['workers']} workers: {p99:.2f} ms")
    if "process_vs_thread_scaling_at_max_workers" in section:
        lines.append(
            "process vs thread scaling at max workers: "
            f"{section['process_vs_thread_scaling_at_max_workers']:.2f}x"
        )
    if "note" in section:
        lines.append(f"note: {section['note']}")
    return "\n".join(lines)


# ----------------------------------------------------- search bench suite
#
# ``repro bench --suite search`` -> BENCH_search.json: the batched soft-mode
# evaluator (:mod:`repro.nas.batched`) against the serial per-candidate
# oracle it replaces — per block shape at the paper's MBConv widths, over
# full soft architecture steps, and over a bilevel epoch.  Serial numbers
# come from the same binary with ``REPRO_BATCHED_SOFT=0``, so the comparison
# is the kill-switch itself.  Weight steps sample hard architectures
# (``hard_weight_step=True``), so only the architecture half of the epoch is
# expected to move.

#: Paper-width channels at CPU-benchmarkable spatial size: the per-block
#: compute matches the N=20/M=9 search, only the resolution is scaled down.
SEARCH_BENCH_SCALE = {"input_size": 32, "num_classes": 16}


@contextlib.contextmanager
def _env_flag(name: str, enabled: bool) -> Iterator[None]:
    """Scoped environment toggle (restores the prior value)."""
    saved = os.environ.get(name)
    os.environ[name] = "1" if enabled else "0"
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = saved


@contextlib.contextmanager
def _batched_soft(enabled: bool) -> Iterator[None]:
    """Scoped ``REPRO_BATCHED_SOFT`` toggle (restores the prior value)."""
    from repro.nas.batched import BATCHED_SOFT_ENV

    with _env_flag(BATCHED_SOFT_ENV, enabled):
        yield


def _interleaved_min_cpu(
    fns: "dict[str, Callable[[], Any]]", rounds: int, warmup: int = 1
) -> dict[str, float]:
    """Minimum CPU seconds per config, sampled in interleaved rounds.

    Single-sample wall-clock comparisons on a shared box swing by 3x
    between runs; sequential per-config sampling then attributes machine
    noise to whichever config ran in the bad window.  Rotating through the
    configs each round and taking the per-config minimum of
    ``time.process_time()`` (CPU time is immune to scheduler gaps) makes
    the serial/batched ratios reproducible to a few percent.
    """
    for fn in fns.values():
        for _ in range(warmup):
            fn()
    samples: dict[str, list[float]] = {name: [] for name in fns}
    for _ in range(rounds):
        for name, fn in fns.items():
            start = time.process_time()
            fn()
            samples[name].append(time.process_time() - start)
    return {name: float(min(ts)) for name, ts in samples.items()}


def _paper_width_supernet():
    import dataclasses

    from repro.nas.quantization import QuantizationConfig
    from repro.nas.space import SearchSpaceConfig
    from repro.nas.supernet import SuperNet

    space = dataclasses.replace(
        SearchSpaceConfig.paper_scale(), **SEARCH_BENCH_SCALE
    )
    net = SuperNet(space, quant=QuantizationConfig.fpga(), seed=0)
    net.train()
    return space, net


def bench_search_blocks(quick: bool = False) -> dict[str, Any]:
    """Soft mixture forward+backward per block shape, serial vs batched.

    Walks the paper-scale supernet's stem and blocks once to capture each
    block's real input activations, then times one representative block per
    distinct ``(c_in, c_out, stride, resolution)`` shape through both the
    serial oracle (``SuperNet._soft_mixture_serial``) and the batched
    evaluator (:func:`repro.nas.batched.soft_block_mixture`).
    """
    from repro.nas.batched import soft_block_mixture
    from repro.nas.gumbel import GumbelSoftmax

    space, net = _paper_width_supernet()
    sampler = GumbelSoftmax(seed=7)
    sample = net.sample(sampler, hard=False)
    rng = np.random.default_rng(0)
    batch = 2 if quick else 4
    x = Tensor(rng.standard_normal(
        (batch, space.input_channels, space.input_size, space.input_size)
    ))
    # Stem prologue mirrors SuperNet.forward so block inputs are authentic.
    out = net.stem_conv(x)
    out = ops_nn.relu6(net.stem_dw_bn(
        ops_nn.conv2d(out, net.stem_dw.weight, stride=1,
                      padding=net.stem_dw.padding, groups=net.stem_dw.groups)
    ))
    out = net.stem_pw(out)
    out = net.stem_out(out)
    inputs: list[np.ndarray] = []
    for i, row in enumerate(net._candidates):
        inputs.append(out.data.copy())
        out = net._soft_mixture_serial(i, row, out, sample)

    representative: dict[tuple[int, int, int, int], int] = {}
    for i in range(space.num_blocks):
        key = (inputs[i].shape[1], space.block_channels[i],
               space.block_strides[i], inputs[i].shape[2])
        representative.setdefault(key, i)
    params = [p for _, p in net.named_parameters()]
    rounds = 2 if quick else 5
    cases = []
    for (c_in, c_out, stride, res), i in sorted(
        representative.items(), key=lambda kv: kv[1]
    ):
        row = net._candidates[i]
        xin = inputs[i]

        def serial_once(i=i, row=row, xin=xin):
            for p in params:
                p.zero_grad()
            y = net._soft_mixture_serial(i, row, Tensor(xin.copy()), sample)
            y.backward(np.ones_like(y.data))

        def batched_once(i=i, row=row, xin=xin):
            for p in params:
                p.zero_grad()
            y = soft_block_mixture(i, row, Tensor(xin.copy()), sample, net.quant)
            y.backward(np.ones_like(y.data))

        timed = _interleaved_min_cpu(
            {"serial": serial_once, "batched": batched_once}, rounds
        )
        cases.append({
            "name": f"b{i:02d}_{c_in}to{c_out}_s{stride}_r{res}",
            "serial_ms": timed["serial"] * 1e3,
            "batched_ms": timed["batched"] * 1e3,
            "speedup": timed["serial"] / timed["batched"],
        })
    geomean = float(np.exp(np.mean([np.log(c["speedup"]) for c in cases])))
    return {"batch": batch, "cases": cases, "geomean_speedup": geomean}


def _make_paper_searcher():
    import dataclasses

    from repro.core.config import EDDConfig
    from repro.core.cosearch import EDDSearcher
    from repro.data.synthetic import SyntheticTaskConfig, make_synthetic_task
    from repro.nas.space import SearchSpaceConfig

    space = dataclasses.replace(
        SearchSpaceConfig.paper_scale(), **SEARCH_BENCH_SCALE
    )
    splits = make_synthetic_task(SyntheticTaskConfig(
        num_classes=SEARCH_BENCH_SCALE["num_classes"],
        image_size=SEARCH_BENCH_SCALE["input_size"],
        train_per_class=2, val_per_class=2, test_per_class=1, seed=0,
    ))
    config = EDDConfig(target="fpga_pipelined", epochs=2, batch_size=4,
                       seed=0, arch_start_epoch=0)
    searcher = EDDSearcher(space, splits, config)
    searcher.calibrate_alpha()
    return searcher, splits


def bench_search_arch_step(quick: bool = False) -> dict[str, Any]:
    """Full soft architecture steps at paper widths, three configurations.

    ``EDDSearcher.arch_step`` draws a soft sample (``hard_arch_step=False``)
    and runs forward+backward over all M candidates of every block — the
    exact workload this PR targets.  Three configurations separate the two
    changes:

    * ``pre_kernel_serial`` — serial evaluator with ``REPRO_DW_DIRECT=0``:
      the pre-PR implementation;
    * ``serial`` — serial evaluator with the direct depthwise kernel (the
      always-on oracle as it now runs);
    * ``batched`` — fused multi-candidate evaluator, direct kernel on.

    Each configuration steps its own identically-seeded searcher; the
    toggles wrap only the timed call, and the rounds interleave (see
    :func:`_interleaved_min_cpu`).
    """
    from repro.autograd.ops_nn import DW_DIRECT_ENV

    rounds = 2 if quick else 7
    setups: dict[str, tuple[bool, bool]] = {
        "pre_kernel_serial": (False, False),
        "serial": (True, False),
        "batched": (True, True),
    }
    searchers = {}
    for name in setups:
        searcher, splits = _make_paper_searcher()
        xv = splits.val.images[:4]
        yv = splits.val.labels[:4]
        searchers[name] = (searcher, xv, yv)

    def step(name: str):
        dw_direct, batched = setups[name]
        searcher, xv, yv = searchers[name]
        with _env_flag(DW_DIRECT_ENV, dw_direct), _batched_soft(batched):
            searcher.arch_step(xv, yv)

    timed = _interleaved_min_cpu(
        {name: (lambda name=name: step(name)) for name in setups}, rounds
    )
    return {
        "pre_kernel_serial_ms": timed["pre_kernel_serial"] * 1e3,
        "serial_ms": timed["serial"] * 1e3,
        "batched_ms": timed["batched"] * 1e3,
        "speedup": timed["serial"] / timed["batched"],
        "kernel_speedup": timed["pre_kernel_serial"] / timed["serial"],
        "total_speedup": timed["pre_kernel_serial"] / timed["batched"],
    }


def bench_search_epoch(quick: bool = False) -> dict[str, Any]:
    """Bilevel epoch CPU time (weight steps + arch steps) per configuration.

    Paper widths at truncated depth so a full epoch stays a CPU benchmark.
    Weight steps use hard samples and are unaffected by the batched soft
    path — but they do run the direct depthwise kernel, so the
    ``pre_kernel_serial`` configuration (full mode only) shows the whole-PR
    effect while ``serial`` vs ``batched`` isolates the soft-path change.
    """
    import dataclasses

    from repro.core.config import EDDConfig
    from repro.core.cosearch import EDDSearcher
    from repro.data.synthetic import SyntheticTaskConfig, make_synthetic_task
    from repro.nas.space import SearchSpaceConfig

    space = dataclasses.replace(
        SearchSpaceConfig.paper_scale(),
        block_channels=(32, 40, 80, 96),
        block_strides=(1, 2, 2, 1),
        **SEARCH_BENCH_SCALE,
    )
    splits = make_synthetic_task(SyntheticTaskConfig(
        num_classes=SEARCH_BENCH_SCALE["num_classes"],
        image_size=SEARCH_BENCH_SCALE["input_size"],
        train_per_class=1 if quick else 2,
        val_per_class=1, test_per_class=1, seed=0,
    ))
    from repro.autograd.ops_nn import DW_DIRECT_ENV

    batch = 8
    setups: dict[str, tuple[bool, bool]] = {
        "pre_kernel_serial": (False, False),
        "serial": (True, False),
        "batched": (True, True),
    }
    if quick:
        del setups["pre_kernel_serial"]
    searchers = {}
    for name in setups:
        config = EDDConfig(target="fpga_pipelined", epochs=2,
                           batch_size=batch, seed=0, arch_start_epoch=0)
        searcher = EDDSearcher(space, splits, config)
        searcher.calibrate_alpha()
        searchers[name] = searcher
    train, val = splits.train, splits.val
    steps: dict[str, int] = {}

    def epoch(name: str):
        dw_direct, batched = setups[name]
        searcher = searchers[name]
        n_w = n_a = 0
        with _env_flag(DW_DIRECT_ENV, dw_direct), _batched_soft(batched):
            for lo in range(0, len(train.labels), batch):
                searcher.weight_step(train.images[lo:lo + batch],
                                     train.labels[lo:lo + batch])
                n_w += 1
            for lo in range(0, len(val.labels), batch):
                searcher.arch_step(val.images[lo:lo + batch],
                                   val.labels[lo:lo + batch])
                n_a += 1
        steps["weight_steps"] = n_w
        steps["arch_steps"] = n_a

    timed = _interleaved_min_cpu(
        {name: (lambda name=name: epoch(name)) for name in setups},
        rounds=1 if quick else 2, warmup=0 if quick else 1,
    )
    result: dict[str, Any] = {
        "blocks": space.num_blocks,
        **steps,
        "serial_seconds": timed["serial"],
        "batched_seconds": timed["batched"],
        "speedup": timed["serial"] / timed["batched"],
    }
    if "pre_kernel_serial" in timed:
        result["pre_kernel_serial_seconds"] = timed["pre_kernel_serial"]
        result["total_speedup"] = timed["pre_kernel_serial"] / timed["batched"]
    return result


def bench_search_parity(quick: bool = False) -> dict[str, Any]:
    """Batched-vs-serial parity in float64: loss, every grad, every buffer.

    Runs the same soft forward+backward through both evaluators on fresh
    identically-seeded supernets (reduced space with a stride-2 block, with
    and without skip candidates) and reports worst-case absolute
    differences.  Only GEMM/sum association differs between the paths, so
    the float64 tolerance is 1e-11; ``parity_ok`` is the CI guard.
    """
    import dataclasses

    from repro.nas.gumbel import GumbelSoftmax
    from repro.nas.quantization import QuantizationConfig
    from repro.nas.space import SearchSpaceConfig
    from repro.nas.supernet import SuperNet
    from repro.nn.functional import cross_entropy

    worst = {"loss": 0.0, "grad": 0.0, "buffer": 0.0}
    with default_dtype(np.float64):
        base = SearchSpaceConfig.reduced()
        spaces = [base, dataclasses.replace(base, allow_skip=True)]
        quants = [QuantizationConfig.fpga(), None]
        rng = np.random.default_rng(42)
        for space in spaces:
            for quant in quants:
                x = rng.standard_normal((3, 3, space.input_size,
                                         space.input_size))
                y = rng.integers(0, space.num_classes, size=3)
                outs = {}
                for batched in (False, True):
                    with _batched_soft(batched):
                        net = SuperNet(space, quant=quant, seed=0)
                        net.train()
                        sample = net.sample(GumbelSoftmax(seed=7), hard=False)
                        loss = cross_entropy(net(Tensor(x.copy()),
                                                 sample=sample), y)
                        loss.backward()
                        outs[batched] = (
                            float(loss.data),
                            {n: None if p.grad is None else p.grad.copy()
                             for n, p in net.named_parameters()},
                            {n: b.copy() for n, b in net.named_buffers()},
                        )
                l0, g0, b0 = outs[False]
                l1, g1, b1 = outs[True]
                worst["loss"] = max(worst["loss"], abs(l0 - l1))
                for n in g0:
                    if g0[n] is None or g1[n] is None:
                        if g0[n] is not g1[n]:
                            worst["grad"] = float("inf")
                        continue
                    worst["grad"] = max(
                        worst["grad"], float(np.max(np.abs(g0[n] - g1[n])))
                    )
                for n in b0:
                    worst["buffer"] = max(
                        worst["buffer"], float(np.max(np.abs(b0[n] - b1[n])))
                    )
    tol = 1e-11
    return {
        "worst_loss_diff": worst["loss"],
        "worst_grad_diff": worst["grad"],
        "worst_buffer_diff": worst["buffer"],
        "tolerance": tol,
        "parity_ok": all(v <= tol for v in worst.values()),
    }


#: Honest reading of the committed numbers, embedded in the report: what
#: sped the search up, what did not, and which candidates never batch.
SEARCH_BENCH_NOTE = (
    "Per-op profiling at paper widths showed the soft step is "
    "compute-bound, not dispatch-bound: the depthwise stage alone was "
    "~80% of backward time under the im2col path. The direct depthwise "
    "kernel added with this change (REPRO_DW_DIRECT=0 reverts it) "
    "delivers the arch-step speedup in 'kernel_speedup' and accelerates "
    "serial soft, batched soft and hard weight steps alike; "
    "'speedup' (batched vs the serial oracle, both with the kernel) is "
    "therefore near 1.0 at paper widths, where arithmetic — identical in "
    "both evaluators — dominates and fusing M dispatches buys little. "
    "Fallbacks that always run serial: skip candidates, eval-mode "
    "passes, and singleton kernel buckets (a space with one expansion "
    "ratio per kernel batches nothing)."
)


def run_search_benchmarks(quick: bool = False) -> dict[str, Any]:
    """Run the search suite; returns the ``BENCH_search.json`` payload."""
    blocks = bench_search_blocks(quick)
    arch = bench_search_arch_step(quick)
    epoch = bench_search_epoch(quick)
    parity = bench_search_parity(quick)
    return {
        "meta": {
            "quick": quick,
            "suite": "search",
            "dtype_policy": get_default_dtype().name,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "note": SEARCH_BENCH_NOTE,
        "blocks": blocks,
        "arch_step": arch,
        "epoch": epoch,
        "parity": parity,
    }


def render_search_report(report: dict[str, Any]) -> str:
    """Human-readable summary of :func:`run_search_benchmarks` output."""
    lines = [
        f"search bench (dtype={report['meta']['dtype_policy']}, "
        f"numpy {report['meta']['numpy']}, quick={report['meta']['quick']})",
        "",
        f"{'block shape':26s} {'serial':>10s} {'batched':>10s} {'speedup':>8s}",
    ]
    for case in report["blocks"]["cases"]:
        lines.append(
            f"{case['name']:26s} {case['serial_ms']:8.1f}ms "
            f"{case['batched_ms']:8.1f}ms {case['speedup']:7.2f}x"
        )
    lines.append(
        f"{'geomean':26s} {'':>10s} {'':>10s} "
        f"{report['blocks']['geomean_speedup']:7.2f}x"
    )
    arch = report["arch_step"]
    epoch = report["epoch"]
    parity = report["parity"]
    lines += [
        "",
        f"soft arch step (paper widths) {arch['pre_kernel_serial_ms']:8.0f}ms "
        f"pre-kernel -> {arch['serial_ms']:8.0f}ms serial -> "
        f"{arch['batched_ms']:8.0f}ms batched",
        f"  direct-dw-kernel speedup {arch['kernel_speedup']:.2f}x, "
        f"batched vs serial oracle {arch['speedup']:.2f}x, "
        f"total {arch['total_speedup']:.2f}x",
        f"bilevel epoch ({epoch['blocks']} blocks, {epoch['weight_steps']}w+"
        f"{epoch['arch_steps']}a steps) {epoch['serial_seconds']:.2f}s -> "
        f"{epoch['batched_seconds']:.2f}s ({epoch['speedup']:.2f}x batched "
        f"vs serial"
        + (
            f"; {epoch['total_speedup']:.2f}x vs pre-kernel"
            if "total_speedup" in epoch
            else ""
        )
        + "; weight steps are hard-sampled, kernel-affected only)",
        f"float64 parity: loss {parity['worst_loss_diff']:.2e}, grad "
        f"{parity['worst_grad_diff']:.2e}, buffers "
        f"{parity['worst_buffer_diff']:.2e} (tol {parity['tolerance']:.0e}) "
        f"-> {'OK' if parity['parity_ok'] else 'FAIL'}",
        "",
        f"note: {report['note']}",
    ]
    return "\n".join(lines)


def write_report(report: dict[str, Any], path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def render_report(report: dict[str, Any]) -> str:
    """Human-readable summary of :func:`run_benchmarks` output."""
    lines = [
        f"numerics bench (dtype={report['meta']['dtype_policy']}, "
        f"numpy {report['meta']['numpy']}, quick={report['meta']['quick']})",
        "",
        f"{'conv case':16s} {'current':>10s} {'baseline':>10s} {'speedup':>8s}",
    ]
    for case in report["conv"]["cases"]:
        lines.append(
            f"{case['name']:16s} {case['current_ms']:8.2f}ms "
            f"{case['baseline_ms']:8.2f}ms {case['speedup']:7.1f}x"
        )
    lines.append(
        f"{'geomean':16s} {'':>10s} {'':>10s} "
        f"{report['conv']['geomean_speedup']:7.1f}x"
    )
    sup = report["supernet"]
    lines += [
        "",
        f"supernet weight step {sup['weight_step_ms']:7.1f}ms "
        f"(baseline {sup['baseline_weight_step_ms']:.1f}ms, "
        f"{sup['weight_step_speedup']:.1f}x)",
        f"supernet arch step   {sup['arch_step_ms']:7.1f}ms "
        f"(baseline {sup['baseline_arch_step_ms']:.1f}ms, "
        f"{sup['arch_step_speedup']:.1f}x)",
    ]
    search = report["search"]
    lines.append(
        f"api.search ({search['epochs']} epochs, {search['blocks']} blocks) "
        f"{search['wall_seconds']:.2f}s (baseline "
        f"{search['baseline_wall_seconds']:.2f}s, {search['speedup']:.1f}x)"
    )
    if search.get("phase_seconds"):
        shares = ", ".join(
            f"{phase}={seconds:.2f}s"
            for phase, seconds in search["phase_seconds"].items()
        )
        lines.append(f"  engine phases: {shares}")
    return "\n".join(lines)
