"""Mini-batch iteration over :class:`repro.data.synthetic.Dataset`."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.data.synthetic import Dataset
from repro.utils.rng import capture_rng_state, new_rng, restore_rng_state


class DataLoader:
    """Shuffled mini-batch iterator yielding ``(images, labels)`` arrays.

    Iterating twice produces different shuffles (the generator advances),
    which is the behaviour training loops expect.  Set ``shuffle=False`` for
    deterministic evaluation order.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int,
        shuffle: bool = True,
        drop_last: bool = False,
        seed: int | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = new_rng(seed)

    def rng_state(self) -> np.ndarray:
        """Serialisable snapshot of the shuffle stream (see search checkpoints).

        Returns:
            ``uint8`` array accepted by :meth:`set_rng_state`.
        """
        return capture_rng_state(self._rng)

    def set_rng_state(self, state: np.ndarray) -> None:
        """Rewind the shuffle stream to a snapshot from :meth:`rng_state`.

        After restoring, the next ``__iter__`` produces exactly the
        permutation the snapshotted loader would have produced — the property
        checkpoint/resume relies on for bit-identical searches.
        """
        restore_rng_state(self._rng, state)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        end = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, end, self.batch_size):
            idx = order[start : start + self.batch_size]
            yield self.dataset.images[idx], self.dataset.labels[idx]
