"""Deterministic synthetic image-classification tasks.

Each class is defined by a band-limited random texture prototype (a mixture
of oriented sinusoids, i.e. Gabor-like patterns).  A sample is its class
prototype under a random circular shift, contrast jitter and additive
Gaussian noise.  Three properties make this a faithful stand-in for the
paper's ImageNet-100 proxy at laptop scale:

* difficulty is tunable (``noise_std``, ``num_classes``, ``image_size``) so
  accuracy differences between architectures are measurable;
* spatial structure matters — depthwise/dense convolutions with different
  kernel sizes genuinely differ in accuracy, giving the NAS a real signal;
* generation is a pure function of the seed, so every experiment is
  bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import spawn_rngs


@dataclass(frozen=True)
class SyntheticTaskConfig:
    """Knobs for :func:`make_synthetic_task`.

    ``frequencies`` controls the texture band: more/higher frequencies make
    classes harder to separate under noise.
    """

    num_classes: int = 10
    image_size: int = 16
    channels: int = 3
    train_per_class: int = 32
    val_per_class: int = 8
    test_per_class: int = 8
    noise_std: float = 0.35
    contrast_jitter: float = 0.25
    max_shift: int = 2
    components: int = 4
    frequencies: tuple[float, ...] = (1.0, 2.0, 3.0)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError(f"need at least 2 classes, got {self.num_classes}")
        if self.image_size < 4:
            raise ValueError(f"image_size too small: {self.image_size}")
        if min(self.train_per_class, self.val_per_class, self.test_per_class) < 1:
            raise ValueError("every split needs at least one sample per class")


@dataclass
class Dataset:
    """A materialised split: images (N, C, H, W) and integer labels (N,)."""

    images: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.images.ndim != 4:
            raise ValueError(f"images must be NCHW, got shape {self.images.shape}")
        if len(self.images) != len(self.labels):
            raise ValueError(
                f"images/labels length mismatch: {len(self.images)} vs {len(self.labels)}"
            )

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if len(self.labels) else 0


@dataclass
class DatasetSplits:
    """Train / validation / test triple produced by one task seed.

    The paper's bilevel search updates weights on ``train`` and architecture
    variables on ``val``; ``test`` is only used for final reporting.
    """

    train: Dataset
    val: Dataset
    test: Dataset
    config: SyntheticTaskConfig = field(default_factory=SyntheticTaskConfig)


def _class_prototypes(config: SyntheticTaskConfig, rng: np.random.Generator) -> np.ndarray:
    """Random band-limited texture per class, shape (K, C, H, W), zero-mean."""
    size = config.image_size
    coords = np.arange(size) / size
    yy, xx = np.meshgrid(coords, coords, indexing="ij")
    protos = np.zeros((config.num_classes, config.channels, size, size))
    for k in range(config.num_classes):
        for ch in range(config.channels):
            pattern = np.zeros((size, size))
            for _ in range(config.components):
                freq = rng.choice(config.frequencies)
                angle = rng.uniform(0.0, np.pi)
                phase = rng.uniform(0.0, 2.0 * np.pi)
                amplitude = rng.uniform(0.5, 1.0)
                fx = freq * np.cos(angle)
                fy = freq * np.sin(angle)
                pattern += amplitude * np.sin(2.0 * np.pi * (fx * xx + fy * yy) + phase)
            pattern -= pattern.mean()
            norm = np.sqrt((pattern**2).mean())
            protos[k, ch] = pattern / max(norm, 1e-9)
    return protos


def _sample_split(
    protos: np.ndarray,
    per_class: int,
    config: SyntheticTaskConfig,
    rng: np.random.Generator,
) -> Dataset:
    num_classes, channels, size, _ = protos.shape
    total = num_classes * per_class
    images = np.empty((total, channels, size, size))
    labels = np.empty(total, dtype=np.int64)
    index = 0
    for k in range(num_classes):
        for _ in range(per_class):
            shift_h = rng.integers(-config.max_shift, config.max_shift + 1)
            shift_w = rng.integers(-config.max_shift, config.max_shift + 1)
            sample = np.roll(protos[k], (shift_h, shift_w), axis=(1, 2))
            contrast = 1.0 + rng.uniform(-config.contrast_jitter, config.contrast_jitter)
            sample = contrast * sample + rng.normal(0.0, config.noise_std, sample.shape)
            images[index] = sample
            labels[index] = k
            index += 1
    # Shuffle within the split so mini-batches are class-mixed from step one.
    order = rng.permutation(total)
    return Dataset(images=images[order], labels=labels[order])


def make_synthetic_task(config: SyntheticTaskConfig | None = None) -> DatasetSplits:
    """Generate the train/val/test splits for one task seed.

    All three splits share class prototypes (same concepts) but use
    independent noise/shift draws, so validation honestly measures
    generalisation rather than memorisation of noise.
    """
    config = config or SyntheticTaskConfig()
    proto_rng, train_rng, val_rng, test_rng = spawn_rngs(config.seed, 4)
    protos = _class_prototypes(config, proto_rng)
    return DatasetSplits(
        train=_sample_split(protos, config.train_per_class, config, train_rng),
        val=_sample_split(protos, config.val_per_class, config, val_rng),
        test=_sample_split(protos, config.test_per_class, config, test_rng),
        config=config,
    )
