"""Batch-level data augmentation and normalisation (pure numpy functions)."""

from __future__ import annotations

import numpy as np


def normalize(images: np.ndarray, mean: float | None = None, std: float | None = None) -> np.ndarray:
    """Standardise a batch to zero mean / unit variance.

    With explicit ``mean``/``std`` the same statistics can be reused across
    splits (compute them on train, apply everywhere).
    """
    mean = images.mean() if mean is None else mean
    std = images.std() if std is None else std
    return (images - mean) / max(std, 1e-9)


def random_flip(images: np.ndarray, rng: np.random.Generator, p: float = 0.5) -> np.ndarray:
    """Horizontal flip applied independently per sample with probability ``p``."""
    out = images.copy()
    mask = rng.random(len(images)) < p
    out[mask] = out[mask][..., ::-1]
    return out


def random_shift(images: np.ndarray, rng: np.random.Generator, max_shift: int = 1) -> np.ndarray:
    """Random circular spatial shift per sample, up to ``max_shift`` pixels."""
    out = np.empty_like(images)
    for i, img in enumerate(images):
        dh = rng.integers(-max_shift, max_shift + 1)
        dw = rng.integers(-max_shift, max_shift + 1)
        out[i] = np.roll(img, (dh, dw), axis=(1, 2))
    return out
