"""Data substrate.

The paper searches on a 100-class subset of ImageNet and retrains on the full
dataset.  Neither is available offline, so this package provides a
deterministic synthetic class-conditional image dataset whose difficulty is
controllable: accuracy responds to model capacity, architecture choices and
quantisation noise, which is all the co-search needs from its data source
(see DESIGN.md, substitution table).
"""

from repro.data.external import (
    load_dataset_npz,
    save_dataset_npz,
    splits_from_arrays,
    splits_from_npz,
)
from repro.data.loader import DataLoader
from repro.data.synthetic import (
    Dataset,
    DatasetSplits,
    SyntheticTaskConfig,
    make_synthetic_task,
)
from repro.data.transforms import normalize, random_flip, random_shift

__all__ = [
    "DataLoader",
    "load_dataset_npz",
    "save_dataset_npz",
    "splits_from_arrays",
    "splits_from_npz",
    "Dataset",
    "DatasetSplits",
    "SyntheticTaskConfig",
    "make_synthetic_task",
    "normalize",
    "random_flip",
    "random_shift",
]
