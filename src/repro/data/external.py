"""Bring-your-own-data support.

The synthetic task is the default offline substrate, but the library is not
tied to it: any (images, labels) arrays — e.g. a real CIFAR/ImageNet subset
exported to ``.npz`` — can be turned into :class:`DatasetSplits` and fed to
the co-search unchanged.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.data.synthetic import Dataset, DatasetSplits, SyntheticTaskConfig
from repro.utils.rng import new_rng


def save_dataset_npz(path: str | Path, images: np.ndarray, labels: np.ndarray) -> Path:
    """Write an (images, labels) pair to ``path`` in the expected layout."""
    images = np.asarray(images)
    labels = np.asarray(labels)
    if images.ndim != 4:
        raise ValueError(f"images must be NCHW, got shape {images.shape}")
    if len(images) != len(labels):
        raise ValueError(
            f"images/labels length mismatch: {len(images)} vs {len(labels)}"
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, images=images.astype(np.float64), labels=labels.astype(np.int64))
    return path


def load_dataset_npz(path: str | Path) -> Dataset:
    """Load a dataset written by :func:`save_dataset_npz` (or compatible)."""
    with np.load(Path(path)) as data:
        missing = {"images", "labels"} - set(data.files)
        if missing:
            raise KeyError(f"{path}: missing arrays {sorted(missing)}")
        return Dataset(images=data["images"].copy(), labels=data["labels"].copy())


def splits_from_arrays(
    images: np.ndarray,
    labels: np.ndarray,
    val_fraction: float = 0.2,
    test_fraction: float = 0.2,
    seed: int = 0,
    stratify: bool = True,
) -> DatasetSplits:
    """Random train/val/test partition of user-provided arrays.

    With ``stratify=True`` (default) every class keeps its proportion in
    each split — important for the bilevel search, whose validation split
    drives the architecture update.
    """
    images = np.asarray(images, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if images.ndim != 4:
        raise ValueError(f"images must be NCHW, got shape {images.shape}")
    if len(images) != len(labels):
        raise ValueError(
            f"images/labels length mismatch: {len(images)} vs {len(labels)}"
        )
    if not 0.0 < val_fraction + test_fraction < 1.0:
        raise ValueError(
            f"val+test fractions must be in (0, 1), got {val_fraction + test_fraction}"
        )
    rng = new_rng(seed)
    n = len(labels)

    if stratify:
        train_idx, val_idx, test_idx = [], [], []
        for cls in np.unique(labels):
            members = np.flatnonzero(labels == cls)
            members = members[rng.permutation(len(members))]
            n_val = max(1, int(round(len(members) * val_fraction)))
            n_test = max(1, int(round(len(members) * test_fraction)))
            if n_val + n_test >= len(members):
                raise ValueError(
                    f"class {cls} has only {len(members)} samples — too few for "
                    f"val_fraction={val_fraction}, test_fraction={test_fraction}"
                )
            val_idx.extend(members[:n_val])
            test_idx.extend(members[n_val:n_val + n_test])
            train_idx.extend(members[n_val + n_test:])
        train_idx = np.array(train_idx)
        val_idx = np.array(val_idx)
        test_idx = np.array(test_idx)
    else:
        order = rng.permutation(n)
        n_val = int(round(n * val_fraction))
        n_test = int(round(n * test_fraction))
        val_idx, test_idx, train_idx = (
            order[:n_val], order[n_val:n_val + n_test], order[n_val + n_test:]
        )

    # Shuffle within splits so batches are class-mixed.
    for idx in (train_idx, val_idx, test_idx):
        rng.shuffle(idx)

    config = SyntheticTaskConfig(
        num_classes=int(labels.max()) + 1,
        image_size=images.shape[-1],
        channels=images.shape[1],
        seed=seed,
    )
    return DatasetSplits(
        train=Dataset(images=images[train_idx], labels=labels[train_idx]),
        val=Dataset(images=images[val_idx], labels=labels[val_idx]),
        test=Dataset(images=images[test_idx], labels=labels[test_idx]),
        config=config,
    )


def splits_from_npz(
    path: str | Path,
    val_fraction: float = 0.2,
    test_fraction: float = 0.2,
    seed: int = 0,
) -> DatasetSplits:
    """One-call loader: ``.npz`` file -> stratified DatasetSplits."""
    dataset = load_dataset_npz(path)
    return splits_from_arrays(
        dataset.images, dataset.labels,
        val_fraction=val_fraction, test_fraction=test_fraction, seed=seed,
    )
