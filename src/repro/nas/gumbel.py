"""Gumbel-Softmax sampling (the paper's Sec. 3.1, following FBNet).

The co-search samples one candidate operation per block and one quantisation
per operation.  Gumbel-Softmax converts that discrete sampling into a
continuous, differentiable relaxation:

``y = softmax((log-prob + Gumbel noise) / temperature)``

With ``hard=True`` the forward pass snaps ``y`` to the argmax one-hot while
the backward pass uses the soft sample (straight-through), which is what lets
the supernet evaluate only the sampled branch — the memory/time advantage the
paper cites over DARTS-style weighted sums.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.autograd import ops_nn
from repro.autograd.tensor import Tensor, make_op
from repro.utils.numeric import stable_softmax


def sample_gumbel(shape: tuple[int, ...], rng: np.random.Generator, eps: float = 1e-10) -> np.ndarray:
    """Draw standard Gumbel(0, 1) noise: ``-log(-log(U))``."""
    u = rng.uniform(eps, 1.0 - eps, size=shape)
    return -np.log(-np.log(u))


def _straight_through(soft: Tensor, axis: int) -> Tensor:
    """Snap to one-hot in the forward pass, identity gradient in backward."""
    hard = np.zeros_like(soft.data)
    argmax = soft.data.argmax(axis=axis, keepdims=True)
    np.put_along_axis(hard, argmax, 1.0, axis=axis)
    delta = hard - soft.data  # constant offset, no gradient

    def backward(grad: np.ndarray):
        return (grad,)

    return make_op(soft.data + delta, (soft,), backward, "straight_through")


def gumbel_softmax_sample(
    logits: Tensor,
    temperature: float,
    rng: np.random.Generator,
    hard: bool = False,
    axis: int = -1,
) -> Tensor:
    """One Gumbel-Softmax draw over ``axis`` of ``logits``.

    Returns a tensor of the same shape summing to 1 along ``axis``; gradients
    flow to ``logits``.
    """
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    noise = Tensor(sample_gumbel(logits.shape, rng))
    scaled = (logits + noise) * (1.0 / temperature)
    soft = ops_nn.softmax(scaled, axis=axis)
    if hard:
        return _straight_through(soft, axis=axis)
    return soft


@dataclass
class TemperatureSchedule:
    """Exponential annealing ``T(t) = max(T_min, T0 * decay^t)``.

    High early temperatures keep sampling near-uniform (exploration); the
    anneal sharpens the distribution so the final argmax derivation is
    faithful to what the search actually evaluated.
    """

    t_initial: float = 5.0
    t_min: float = 0.3
    decay: float = 0.95

    def __post_init__(self) -> None:
        if self.t_initial <= 0 or self.t_min <= 0:
            raise ValueError("temperatures must be positive")
        if not 0.0 < self.decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {self.decay}")

    def at_epoch(self, epoch: int) -> float:
        return max(self.t_min, self.t_initial * self.decay**epoch)


class GumbelSoftmax:
    """Stateful sampler bundling noise stream and temperature schedule."""

    def __init__(
        self,
        schedule: TemperatureSchedule | None = None,
        seed: int | None = None,
    ) -> None:
        self.schedule = schedule or TemperatureSchedule()
        self.rng = np.random.default_rng(seed)
        self.temperature = self.schedule.t_initial

    def set_epoch(self, epoch: int) -> float:
        self.temperature = self.schedule.at_epoch(epoch)
        return self.temperature

    def sample(self, logits: Tensor, hard: bool = False, axis: int = -1) -> Tensor:
        return gumbel_softmax_sample(
            logits, self.temperature, self.rng, hard=hard, axis=axis
        )

    def expected(self, logits: Tensor, axis: int = -1) -> Tensor:
        """Noise-free expectation (plain softmax at the current temperature)."""
        return ops_nn.softmax(logits * (1.0 / self.temperature), axis=axis)


def entropy_of_logits(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Shannon entropy (nats) of the implied categorical — a convergence probe."""
    probs = stable_softmax(logits, axis=axis)
    return -(probs * np.log(np.maximum(probs, 1e-12))).sum(axis=axis)


def uniform_logits(shape: tuple[int, ...]) -> np.ndarray:
    """Zero-initialised logits = uniform sampling (paper's initialisation)."""
    return np.zeros(shape)


def perplexity(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """exp(entropy): effective number of live candidates per row."""
    return np.exp(entropy_of_logits(logits, axis=axis))


def log_m_entropy_budget(m: int) -> float:
    """Maximum achievable entropy for an M-way choice (``log M``)."""
    return math.log(m)
