"""Search-space configuration (the paper's Sec. 3.1 / Sec. 6 setup).

The paper's space: ``N = 20`` MBConv blocks, each choosing among
``M = |kernels| x |expansions| = 3 x 3 = 9`` candidate operations, plus a
fixed stem (Conv3x3 stride 2, SepConv to a narrow trunk, Conv1x1) and head
(Conv1x1, GAP, FC) mirroring the EDD-Net drawings of Fig. 4.

``SearchSpaceConfig`` also carries the per-block channel/stride schedule so
the same class describes both the paper-scale space and the reduced space
used for CPU-sized experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nas.arch_spec import (
    ArchSpec,
    Block,
    ConvBlock,
    FCBlock,
    MBConvBlock,
    SepConvBlock,
    StemBlock,
    _out_size,
)


@dataclass(frozen=True)
class CandidateOp:
    """One candidate operation.

    Regular candidates are MBConv (kernel, expansion) pairs.  The sentinel
    ``CandidateOp.skip()`` is the depth-search candidate: it contributes an
    identity (or a pointwise projection where the block must change
    channels/resolution), letting the search shorten the network — the
    mechanism behind "shallower" pipelined designs like EDD-Net-3.
    """

    kernel: int
    expansion: int

    @property
    def is_skip(self) -> bool:
        return self.expansion == 0

    @property
    def label(self) -> str:
        if self.is_skip:
            return "skip"
        return f"MB{self.expansion} {self.kernel}x{self.kernel}"

    @classmethod
    def skip(cls) -> "CandidateOp":
        return cls(kernel=1, expansion=0)


@dataclass(frozen=True)
class BlockGeometry:
    """Resolved input/output geometry of one searchable block position.

    The device models use this to turn candidate ops into workload constants
    (Eq. 12) without instantiating any weights.
    """

    in_ch: int
    out_ch: int
    stride: int
    in_h: int
    in_w: int
    out_h: int
    out_w: int


@dataclass
class SearchSpaceConfig:
    """Geometry of the single-path supernet.

    ``block_channels``/``block_strides`` have one entry per searchable block.
    Defaults reproduce the paper-scale space; classmethods provide reduced
    spaces for tests and CPU experiments.
    """

    kernel_sizes: tuple[int, ...] = (3, 5, 7)
    expansions: tuple[int, ...] = (4, 5, 6)
    block_channels: tuple[int, ...] = (
        32, 40, 40, 40, 80, 80, 80, 80, 96, 96, 96, 96, 96, 192, 192, 192, 192, 192, 192, 320,
    )
    block_strides: tuple[int, ...] = (
        1, 2, 1, 1, 2, 1, 1, 1, 1, 1, 1, 1, 1, 2, 1, 1, 1, 1, 1, 1,
    )
    stem_channels: int = 32
    trunk_channels: int = 16
    pre_block_channels: int = 32
    head_channels: int = 1280
    num_classes: int = 1000
    input_size: int = 224
    input_channels: int = 3
    #: Depth search: append a skip candidate to every block's menu.  Skips
    #: resolve to the identity where shapes allow, otherwise to a pointwise
    #: projection — the searched network can become shallower than N.
    allow_skip: bool = False

    def __post_init__(self) -> None:
        if len(self.block_channels) != len(self.block_strides):
            raise ValueError(
                f"block_channels ({len(self.block_channels)}) and block_strides "
                f"({len(self.block_strides)}) must have the same length"
            )
        if not self.kernel_sizes or not self.expansions:
            raise ValueError("kernel_sizes and expansions must be non-empty")

    # -- sizes ----------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        """N in the paper."""
        return len(self.block_channels)

    @property
    def num_ops(self) -> int:
        """M in the paper (plus one when depth search is enabled)."""
        base = len(self.kernel_sizes) * len(self.expansions)
        return base + 1 if self.allow_skip else base

    def candidate_ops(self) -> list[CandidateOp]:
        """All M candidates in deterministic (kernel-major) order.

        With ``allow_skip`` the skip candidate comes last, so indices of the
        MBConv candidates are stable across the two settings.
        """
        ops = [
            CandidateOp(kernel=k, expansion=e)
            for k in self.kernel_sizes
            for e in self.expansions
        ]
        if self.allow_skip:
            ops.append(CandidateOp.skip())
        return ops

    # -- geometry helpers -------------------------------------------------------
    def fixed_prefix(self) -> list[Block]:
        """The non-searchable stem blocks (Fig. 4 left edge)."""
        return [
            StemBlock(out_ch=self.stem_channels, kernel=3, stride=2),
            SepConvBlock(kernel=3, out_ch=self.trunk_channels),
            ConvBlock(out_ch=self.pre_block_channels, kernel=1),
        ]

    def fixed_suffix(self) -> list[Block]:
        """The non-searchable head blocks (Conv1x1 + GAP/FC in Fig. 4)."""
        return [
            ConvBlock(out_ch=self.head_channels, kernel=1),
            FCBlock(out_features=self.num_classes),
        ]

    def block_input_channels(self) -> list[int]:
        """Input channel count of every searchable block."""
        inputs = [self.pre_block_channels]
        inputs.extend(self.block_channels[:-1])
        return inputs

    def block_geometries(self) -> list[BlockGeometry]:
        """Per-block geometry after walking the fixed prefix.

        Identical for every candidate op at a position (candidates only vary
        kernel and expansion), so the result is a property of the space.
        """
        ch, h, w = self.input_channels, self.input_size, self.input_size
        for block in self.fixed_prefix():
            _, ch, h, w = block.expand(ch, h, w, -1)
        geometries = []
        for out_ch, stride in zip(self.block_channels, self.block_strides):
            oh, ow = _out_size(h, stride), _out_size(w, stride)
            geometries.append(
                BlockGeometry(
                    in_ch=ch, out_ch=out_ch, stride=stride,
                    in_h=h, in_w=w, out_h=oh, out_w=ow,
                )
            )
            ch, h, w = out_ch, oh, ow
        return geometries

    def spec_for_choices(
        self, choices: list[CandidateOp], name: str = "searched"
    ) -> ArchSpec:
        """Assemble an :class:`ArchSpec` from one candidate choice per block."""
        if len(choices) != self.num_blocks:
            raise ValueError(
                f"need {self.num_blocks} choices, got {len(choices)}"
            )
        blocks: list[Block] = list(self.fixed_prefix())
        in_channels = self.block_input_channels()
        for i, (op, out_ch, stride) in enumerate(
            zip(choices, self.block_channels, self.block_strides)
        ):
            if op.is_skip:
                if stride == 1 and in_channels[i] == out_ch:
                    continue  # pure identity: the block disappears
                blocks.append(ConvBlock(out_ch=out_ch, kernel=1, stride=stride))
                continue
            blocks.append(
                MBConvBlock(
                    expansion=op.expansion,
                    kernel=op.kernel,
                    out_ch=out_ch,
                    stride=stride,
                )
            )
        blocks.extend(self.fixed_suffix())
        return ArchSpec(
            name=name,
            blocks=blocks,
            input_size=self.input_size,
            input_channels=self.input_channels,
        )

    # -- canned configurations ---------------------------------------------------
    @classmethod
    def paper_scale(cls) -> "SearchSpaceConfig":
        """The N=20, M=9 ImageNet-scale space of Sec. 6."""
        return cls()

    @classmethod
    def reduced(
        cls,
        num_blocks: int = 4,
        num_classes: int = 10,
        input_size: int = 16,
        kernel_sizes: tuple[int, ...] = (3, 5),
        expansions: tuple[int, ...] = (2, 4),
    ) -> "SearchSpaceConfig":
        """CPU-sized space used by examples and the search benchmarks."""
        channels, strides = [], []
        ch = 16
        for i in range(num_blocks):
            if i == num_blocks // 2:
                ch *= 2
                strides.append(2)
            else:
                strides.append(1)
            channels.append(ch)
        return cls(
            kernel_sizes=kernel_sizes,
            expansions=expansions,
            block_channels=tuple(channels),
            block_strides=tuple(strides),
            stem_channels=8,
            trunk_channels=8,
            pre_block_channels=16,
            head_channels=64,
            num_classes=num_classes,
            input_size=input_size,
            input_channels=3,
        )

    @classmethod
    def tiny(cls) -> "SearchSpaceConfig":
        """Smallest usable space — unit-test scale."""
        return cls.reduced(num_blocks=2, num_classes=4, input_size=8)
