"""Architecture specification IR.

``ArchSpec`` is the lingua franca of the reproduction: searched networks are
derived into it, every baseline in the model zoo is encoded in it, the
analytic hardware evaluators consume it, and ``repro.nas.network`` can build
a trainable module from it.  A spec is a sequence of high-level *blocks*
(stem convs, MBConv, separable convs, pools, FC) that resolve — given an
input resolution — into concrete per-layer geometry with MACs, parameter and
activation counts.

Layer kinds used throughout the hardware models:

* ``conv``     — dense (optionally grouped) convolution
* ``dwconv``   — depthwise convolution (one filter per channel)
* ``pool``     — max/avg pooling (negligible compute, changes resolution)
* ``fc``       — fully connected layer (after global average pooling)
* ``shuffle``  — channel shuffle marker (zero MACs; flags ops unsupported by
  the recursive FPGA flow, mirroring CHaiDNN's lack of ShuffleNet support in
  Table 1)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class ResolvedLayer:
    """One concrete layer with fully resolved geometry."""

    kind: str
    kernel: int
    stride: int
    in_ch: int
    out_ch: int
    groups: int
    in_h: int
    in_w: int
    out_h: int
    out_w: int
    block_index: int = -1  # which high-level block produced this layer

    @property
    def macs(self) -> int:
        """Multiply-accumulate count (the paper's Eq. 12 workload terms)."""
        if self.kind == "conv":
            return (
                self.kernel
                * self.kernel
                * self.out_h
                * self.out_w
                * (self.in_ch // self.groups)
                * self.out_ch
            )
        if self.kind == "dwconv":
            return self.kernel * self.kernel * self.out_h * self.out_w * self.in_ch
        if self.kind == "fc":
            return self.in_ch * self.out_ch
        return 0  # pool / shuffle move data but do no MACs

    @property
    def params(self) -> int:
        if self.kind == "conv":
            return self.kernel * self.kernel * (self.in_ch // self.groups) * self.out_ch
        if self.kind == "dwconv":
            return self.kernel * self.kernel * self.in_ch
        if self.kind == "fc":
            return self.in_ch * self.out_ch + self.out_ch
        return 0

    @property
    def input_activations(self) -> int:
        return self.in_ch * self.in_h * self.in_w

    @property
    def output_activations(self) -> int:
        return self.out_ch * self.out_h * self.out_w


class Block:
    """Base class for high-level blocks; subclasses expand into layers."""

    def expand(self, in_ch: int, h: int, w: int, index: int) -> tuple[list[ResolvedLayer], int, int, int]:
        """Return (layers, out_ch, out_h, out_w) for the given input geometry."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


def _out_size(size: int, stride: int) -> int:
    """'Same' padding output size used by all blocks."""
    return math.ceil(size / stride)


@dataclass(frozen=True)
class StemBlock(Block):
    """Initial dense convolution (e.g. Conv 3x3 stride 2 in every EDD-Net)."""

    out_ch: int
    kernel: int = 3
    stride: int = 2

    def expand(self, in_ch, h, w, index):
        oh, ow = _out_size(h, self.stride), _out_size(w, self.stride)
        layer = ResolvedLayer(
            "conv", self.kernel, self.stride, in_ch, self.out_ch, 1, h, w, oh, ow, index
        )
        return [layer], self.out_ch, oh, ow

    def describe(self) -> str:
        return f"Conv{self.kernel}x{self.kernel} -> {self.out_ch}" + (
            f" /s{self.stride}" if self.stride > 1 else ""
        )


@dataclass(frozen=True)
class ConvBlock(Block):
    """Plain dense convolution block (VGG/ResNet style)."""

    out_ch: int
    kernel: int = 3
    stride: int = 1
    groups: int = 1

    def expand(self, in_ch, h, w, index):
        oh, ow = _out_size(h, self.stride), _out_size(w, self.stride)
        layer = ResolvedLayer(
            "conv", self.kernel, self.stride, in_ch, self.out_ch, self.groups, h, w, oh, ow, index
        )
        return [layer], self.out_ch, oh, ow

    def describe(self) -> str:
        return f"Conv{self.kernel}x{self.kernel} -> {self.out_ch}" + (
            f" /s{self.stride}" if self.stride > 1 else ""
        )


@dataclass(frozen=True)
class MBConvBlock(Block):
    """MobileNetV2 inverted residual: expand 1x1 -> depthwise kxk -> project 1x1.

    This is the candidate operation of the paper's search space (Sec. 3.1):
    ``MB <expansion> <k>x<k>``.
    """

    expansion: int
    kernel: int
    out_ch: int
    stride: int = 1

    def expand(self, in_ch, h, w, index):
        hidden = in_ch * self.expansion
        oh, ow = _out_size(h, self.stride), _out_size(w, self.stride)
        layers = [
            ResolvedLayer("conv", 1, 1, in_ch, hidden, 1, h, w, h, w, index),
            ResolvedLayer("dwconv", self.kernel, self.stride, hidden, hidden, hidden, h, w, oh, ow, index),
            ResolvedLayer("conv", 1, 1, hidden, self.out_ch, 1, oh, ow, oh, ow, index),
        ]
        return layers, self.out_ch, oh, ow

    def describe(self) -> str:
        return f"MB{self.expansion} {self.kernel}x{self.kernel} -> {self.out_ch}" + (
            f" /s{self.stride}" if self.stride > 1 else ""
        )


@dataclass(frozen=True)
class SepConvBlock(Block):
    """Separable convolution: depthwise kxk then pointwise projection."""

    kernel: int
    out_ch: int
    stride: int = 1

    def expand(self, in_ch, h, w, index):
        oh, ow = _out_size(h, self.stride), _out_size(w, self.stride)
        layers = [
            ResolvedLayer("dwconv", self.kernel, self.stride, in_ch, in_ch, in_ch, h, w, oh, ow, index),
            ResolvedLayer("conv", 1, 1, in_ch, self.out_ch, 1, oh, ow, oh, ow, index),
        ]
        return layers, self.out_ch, oh, ow

    def describe(self) -> str:
        return f"Sep{self.kernel}x{self.kernel} -> {self.out_ch}" + (
            f" /s{self.stride}" if self.stride > 1 else ""
        )


@dataclass(frozen=True)
class PoolBlock(Block):
    """Max/avg pooling; compute-free but halves resolution."""

    kernel: int = 2
    stride: int = 2
    mode: str = "max"

    def expand(self, in_ch, h, w, index):
        oh, ow = _out_size(h, self.stride), _out_size(w, self.stride)
        layer = ResolvedLayer("pool", self.kernel, self.stride, in_ch, in_ch, 1, h, w, oh, ow, index)
        return [layer], in_ch, oh, ow

    def describe(self) -> str:
        return f"{self.mode}pool{self.kernel} /s{self.stride}"


@dataclass(frozen=True)
class ShuffleUnit(Block):
    """ShuffleNetV2 unit (half-split branch + channel shuffle).

    Geometry-wise this contributes the branch convolutions plus a zero-MAC
    ``shuffle`` marker layer.  The marker lets device models that cannot map
    channel shuffles (the recursive FPGA flow, mirroring CHaiDNN) report the
    network as unsupported.
    """

    out_ch: int
    stride: int = 1

    def expand(self, in_ch, h, w, index):
        oh, ow = _out_size(h, self.stride), _out_size(w, self.stride)
        branch = self.out_ch // 2
        layers = [
            ResolvedLayer("conv", 1, 1, in_ch if self.stride > 1 else in_ch // 2, branch, 1, h, w, h, w, index),
            ResolvedLayer("dwconv", 3, self.stride, branch, branch, branch, h, w, oh, ow, index),
            ResolvedLayer("conv", 1, 1, branch, branch, 1, oh, ow, oh, ow, index),
        ]
        if self.stride > 1:
            # Second (shortcut) branch also has a dw + pw pair when downsampling.
            layers += [
                ResolvedLayer("dwconv", 3, self.stride, in_ch, in_ch, in_ch, h, w, oh, ow, index),
                ResolvedLayer("conv", 1, 1, in_ch, branch, 1, oh, ow, oh, ow, index),
            ]
        layers.append(
            ResolvedLayer("shuffle", 1, 1, self.out_ch, self.out_ch, 1, oh, ow, oh, ow, index)
        )
        return layers, self.out_ch, oh, ow

    def describe(self) -> str:
        return f"ShuffleUnit -> {self.out_ch}" + (f" /s{self.stride}" if self.stride > 1 else "")


@dataclass(frozen=True)
class FCBlock(Block):
    """Fully connected layer.

    Default semantics are "global average pool then FC" (MobileNet-style
    heads).  With ``flatten=True`` the spatial map is flattened instead
    (VGG-style heads), so the FC input is ``in_ch * h * w``.
    """

    out_features: int
    flatten: bool = False

    def expand(self, in_ch, h, w, index):
        in_features = in_ch * h * w if self.flatten else in_ch
        layer = ResolvedLayer("fc", 1, 1, in_features, self.out_features, 1, 1, 1, 1, 1, index)
        return [layer], self.out_features, 1, 1

    def describe(self) -> str:
        prefix = "Flatten+FC" if self.flatten else "GAP+FC"
        return f"{prefix} -> {self.out_features}"


@dataclass(frozen=True)
class Branches(Block):
    """Parallel branches from a shared input (inception modules, residuals).

    ``combine='concat'`` concatenates branch outputs along channels
    (GoogleNet inception); ``combine='add'`` element-wise adds them (ResNet
    residual), requiring every branch to produce the same channel count.  An
    empty branch (``[]``) is an identity shortcut.  All branches must reach
    the same output resolution.
    """

    branches: tuple[tuple[Block, ...], ...]
    combine: str = "concat"

    def expand(self, in_ch, h, w, index):
        if self.combine not in ("concat", "add"):
            raise ValueError(f"combine must be 'concat' or 'add', got {self.combine!r}")
        layers: list[ResolvedLayer] = []
        out_channels: list[int] = []
        out_hw: set[tuple[int, int]] = set()
        for branch in self.branches:
            ch, bh, bw = in_ch, h, w
            for block in branch:
                sub_layers, ch, bh, bw = block.expand(ch, bh, bw, index)
                layers.extend(sub_layers)
            out_channels.append(ch)
            out_hw.add((bh, bw))
        if len(out_hw) != 1:
            raise ValueError(
                f"branches disagree on output resolution: {sorted(out_hw)}"
            )
        oh, ow = out_hw.pop()
        if self.combine == "concat":
            out_ch = sum(out_channels)
        else:
            distinct = set(out_channels)
            if len(distinct) != 1:
                raise ValueError(
                    f"'add' branches must share channel count, got {out_channels}"
                )
            out_ch = out_channels[0]
        return layers, out_ch, oh, ow

    def describe(self) -> str:
        inner = " | ".join(
            "identity" if not branch else " -> ".join(b.describe() for b in branch)
            for branch in self.branches
        )
        return f"[{inner}] ({self.combine})"


@dataclass
class ArchSpec:
    """A complete network: named block sequence plus input geometry."""

    name: str
    blocks: list[Block]
    input_size: int = 224
    input_channels: int = 3
    # Optional annotations attached by the co-search / device models.
    weight_bits: int | None = None
    metadata: dict = field(default_factory=dict)

    def layers(self) -> list[ResolvedLayer]:
        """Resolve every block into concrete layers, walking the geometry."""
        resolved: list[ResolvedLayer] = []
        ch, h, w = self.input_channels, self.input_size, self.input_size
        for index, block in enumerate(self.blocks):
            layers, ch, h, w = block.expand(ch, h, w, index)
            resolved.extend(layers)
        return resolved

    # -- aggregate statistics -------------------------------------------------
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers())

    def total_params(self) -> int:
        return sum(layer.params for layer in self.layers())

    def num_layers(self) -> int:
        return len(self.layers())

    def has_kind(self, kind: str) -> bool:
        return any(layer.kind == kind for layer in self.layers())

    def buildable(self) -> bool:
        """Whether :func:`repro.nas.network.build_network` (and therefore the
        compiled runtime) can instantiate every block.

        Channel-shuffle marker layers have no builder unit — mirroring the
        recursive FPGA flow's lack of ShuffleNet support — so specs containing
        them are analytic-model-only.
        """
        return not self.has_kind("shuffle")

    def describe(self) -> str:
        """Human-readable block listing (used by the Figure 4 renderer)."""
        lines = [f"{self.name} (input {self.input_channels}x{self.input_size}x{self.input_size})"]
        lines += [f"  [{i:2d}] {b.describe()}" for i, b in enumerate(self.blocks)]
        return "\n".join(lines)

    def summary(self) -> dict:
        return {
            "name": self.name,
            "blocks": len(self.blocks),
            "layers": self.num_layers(),
            "macs": self.total_macs(),
            "params": self.total_params(),
        }


def scale_spec(spec: ArchSpec, width_mult: float = 1.0, input_size: int | None = None,
               num_classes: int | None = None, min_ch: int = 4) -> ArchSpec:
    """Down/up-scale a spec: channel width multiplier and input resolution.

    Used to train laptop-scale versions of the zoo networks on the synthetic
    proxy task while preserving their relative shapes.
    """

    def scale_ch(ch: int) -> int:
        return max(min_ch, int(round(ch * width_mult)))

    def scale_block(block: Block, is_classifier: bool = False) -> Block:
        if isinstance(block, (StemBlock, ConvBlock, SepConvBlock, MBConvBlock, ShuffleUnit)):
            return replace(block, out_ch=scale_ch(block.out_ch))
        if isinstance(block, FCBlock):
            if is_classifier:
                return replace(block, out_features=num_classes or block.out_features)
            # Hidden FC stages (VGG-style) scale with the width multiplier.
            return replace(block, out_features=scale_ch(block.out_features))
        if isinstance(block, Branches):
            return replace(
                block,
                branches=tuple(
                    tuple(scale_block(b) for b in branch) for branch in block.branches
                ),
            )
        return block

    new_blocks = [
        scale_block(block, is_classifier=(i == len(spec.blocks) - 1))
        for i, block in enumerate(spec.blocks)
    ]
    return ArchSpec(
        name=f"{spec.name}-w{width_mult:g}",
        blocks=new_blocks,
        input_size=input_size or spec.input_size,
        input_channels=spec.input_channels,
        weight_bits=spec.weight_bits,
    )
