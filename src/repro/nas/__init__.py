"""NAS design space: supernet, Gumbel-Softmax sampling, quantisation, derivation.

This package implements the blue blocks of the paper's Fig. 1 (the DNN search
space ``A``: single-path supernet with M = |kernels| x |expansions| MBConv
candidates per block, sampled with Gumbel-Softmax over ``Theta``) plus the
quantisation half of the red blocks (the ``Phi`` sampling parameters of
Sec. 3.2.1).  Parallel factors and the rest of the implementation space live
in :mod:`repro.hw`.
"""

from repro.nas.arch_spec import (
    ArchSpec,
    Branches,
    ConvBlock,
    FCBlock,
    MBConvBlock,
    PoolBlock,
    ResolvedLayer,
    SepConvBlock,
    ShuffleUnit,
    StemBlock,
    scale_spec,
)
from repro.nas.gumbel import GumbelSoftmax, TemperatureSchedule, gumbel_softmax_sample
from repro.nas.quantization import QuantizationConfig, fake_quantize
from repro.nas.space import CandidateOp, SearchSpaceConfig
from repro.nas.supernet import SampledArch, SuperNet
from repro.nas.derive import derive_arch_spec
from repro.nas.network import build_network
from repro.nas.warmstart import inherit_weights

__all__ = [
    "ArchSpec",
    "Branches",
    "CandidateOp",
    "ConvBlock",
    "FCBlock",
    "GumbelSoftmax",
    "MBConvBlock",
    "PoolBlock",
    "QuantizationConfig",
    "ResolvedLayer",
    "SampledArch",
    "SearchSpaceConfig",
    "SepConvBlock",
    "ShuffleUnit",
    "StemBlock",
    "SuperNet",
    "TemperatureSchedule",
    "build_network",
    "derive_arch_spec",
    "fake_quantize",
    "gumbel_softmax_sample",
    "inherit_weights",
    "scale_spec",
]
