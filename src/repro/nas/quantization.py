"""Differentiable quantisation (Sec. 3.2.1 of the paper).

Each candidate operation gets ``Q`` quantisation paths; a Gumbel-Softmax over
the sampling parameters ``Phi`` picks a bit-width per feed-forward pass.  The
effect of quantisation on *accuracy* is modelled by fake-quantising the
operation's weights with a straight-through estimator; its effect on
*performance/resource* flows through the device models' ``Perf^q`` /
``Res^q`` terms (Stage-1).

Three sharing modes mirror the paper's device constraints:

* ``per_block_op`` — Phi is (N, M, Q): pipelined FPGA, fully mixed precision.
* ``per_op``       — Phi is (M, Q): recursive FPGA, where blocks sharing an
  IP must share its implementation variables (Sec. 3.2.5 footnote).
* ``global``       — Phi is (Q,): GPU, where the framework (TensorRT) forces
  a single network-wide precision (Sec. 4.2).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.autograd.ops_basic import quantize_ste
from repro.autograd.tensor import Tensor, make_op, pool_for_op

SHARING_MODES = ("per_block_op", "per_op", "global")


@dataclass(frozen=True)
class QuantizationConfig:
    """Bit-width menu plus sharing mode.

    Defaults match the paper's FPGA setting (4/8/16-bit weights); use
    :meth:`gpu` for the 8/16/32-bit GPU menu.
    """

    bitwidths: tuple[int, ...] = (4, 8, 16)
    sharing: str = "per_block_op"
    activation_bits: int = 16

    def __post_init__(self) -> None:
        if not self.bitwidths:
            raise ValueError("bitwidths must be non-empty")
        if any(b < 2 or b > 32 for b in self.bitwidths):
            raise ValueError(f"bitwidths out of supported range [2, 32]: {self.bitwidths}")
        if self.sharing not in SHARING_MODES:
            raise ValueError(f"sharing must be one of {SHARING_MODES}, got {self.sharing!r}")

    @property
    def num_levels(self) -> int:
        """Q in the paper."""
        return len(self.bitwidths)

    def phi_shape(self, num_blocks: int, num_ops: int) -> tuple[int, ...]:
        """Shape of the Phi sampling-parameter array for this sharing mode."""
        if self.sharing == "per_block_op":
            return (num_blocks, num_ops, self.num_levels)
        if self.sharing == "per_op":
            return (num_ops, self.num_levels)
        return (self.num_levels,)

    @classmethod
    def fpga(cls, sharing: str = "per_block_op") -> "QuantizationConfig":
        """FPGA menu: 4/8/16-bit weights, 16-bit activations (Sec. 6)."""
        return cls(bitwidths=(4, 8, 16), sharing=sharing, activation_bits=16)

    @classmethod
    def gpu(cls) -> "QuantizationConfig":
        """GPU menu: 8/16/32-bit weights, 32-bit activations, global sharing."""
        return cls(bitwidths=(8, 16, 32), sharing="global", activation_bits=32)


def fake_quantize(x: Tensor, bits: int, max_abs: float | None = None) -> Tensor:
    """Symmetric uniform fake-quantisation with straight-through gradients.

    Values are clipped to ``[-max_abs, max_abs]`` (default: the tensor's own
    max magnitude), scaled to the signed integer grid of ``bits`` bits,
    rounded (STE), and rescaled.  At 32 bits this is the identity — the float
    path.
    """
    if bits >= 32:
        return x
    if bits < 2:
        raise ValueError(f"cannot quantise to {bits} bits")
    if max_abs is None:
        max_abs = float(np.max(np.abs(x.data))) or 1.0
    if max_abs < 1e-30:
        # (Sub)normal-range tensors: the grid degenerates and 1/scale would
        # overflow; quantisation of a numerically-zero tensor is the identity.
        return x
    levels = float(2 ** (bits - 1) - 1)
    scale = max_abs / levels
    return quantize_ste(x, scale, -max_abs, max_abs)


def quantization_error(x: np.ndarray, bits: int) -> float:
    """RMS error introduced by ``bits``-bit fake quantisation (diagnostic)."""
    if bits >= 32:
        return 0.0
    max_abs = float(np.max(np.abs(x))) or 1.0
    if max_abs < 1e-30:
        return 0.0
    levels = float(2 ** (bits - 1) - 1)
    scale = max_abs / levels
    quantised = np.round(np.clip(x, -max_abs, max_abs) / scale) * scale
    return float(np.sqrt(np.mean((x - quantised) ** 2)))


def mixed_quantize(x: Tensor, weights: Tensor, bitwidths: tuple[int, ...]) -> Tensor:
    """Gumbel-weighted mixture of quantisation paths (soft Stage-1 forward).

    ``weights`` is a (Q,) tensor summing to 1 (a Gumbel-Softmax sample over
    Phi).  With a hard sample this reduces to the single selected path; with
    a soft sample it is the expectation over paths, matching Eqs. 2-3.

    Implemented as **one fused graph node** instead of the former
    ``Q x (quantize -> getitem -> mul) -> add`` composite (~3Q+2 nodes and
    buffers per conv weight — a measurable share of the supernet step's heap
    churn and python dispatch).  The forward accumulates the terms in the
    same order as the composite did, so outputs are unchanged; the backward
    uses the straight-through identities the composite's graph computed
    piecewise: every element lies inside the clip range (``max_abs`` is the
    tensor's own maximum), so ``dL/dx = sum_i(w_i) * g`` and
    ``dL/dw_i = sum(fq_i(x) * g)``.
    """
    if weights.shape != (len(bitwidths),):
        raise ValueError(
            f"weights shape {weights.shape} does not match {len(bitwidths)} bitwidths"
        )
    x_data = x.data
    w_data = weights.data
    q = len(bitwidths)
    max_abs = float(np.max(np.abs(x_data))) or 1.0
    pool = pool_for_op(x, weights)
    if pool is not None:
        paths = pool.acquire((q,) + x.shape, x_data.dtype)
        out = pool.acquire(x.shape, x_data.dtype)
        scratch = pool.acquire(x.shape, x_data.dtype)
    else:
        paths = np.empty((q,) + x.shape, dtype=x_data.dtype)
        out = np.empty(x.shape, dtype=x_data.dtype)
        scratch = np.empty(x.shape, dtype=x_data.dtype)
    for idx, bits in enumerate(bitwidths):
        dest = paths[idx]
        if bits >= 32 or max_abs < 1e-30:
            np.copyto(dest, x_data)  # the float path: quantisation is identity
        else:
            if bits < 2:
                raise ValueError(f"cannot quantise to {bits} bits")
            levels = float(2 ** (bits - 1) - 1)
            scale = max_abs / levels
            # clip to [-max_abs, max_abs] is the identity here (max_abs is
            # the tensor's own max magnitude), so the scale multiply reads
            # x directly — one fewer full pass, bit-identical output.
            np.multiply(x_data, 1.0 / scale, out=dest)
            np.rint(dest, out=dest)
            dest *= scale
        if idx == 0:
            np.multiply(dest, w_data[0], out=out)
        else:
            np.multiply(dest, w_data[idx], out=scratch)
            out += scratch
    if pool is not None:
        pool.release(scratch)

    def backward(grad: np.ndarray):
        grad_w = np.empty(q, dtype=w_data.dtype)
        for idx in range(q):
            grad_w[idx] = (grad * paths[idx]).sum()
        grad_x = grad * w_data.sum()
        return grad_x, grad_w

    return make_op(
        out, (x, weights), backward, "mixed_quantize",
        retire=(paths,) if pool is not None and pool.owns(paths) else (),
        pooled_out=pool is not None and pool.owns(out),
    )


def mixed_quantize_stacked(
    weights: "Sequence[Tensor]",
    quant_weights: "Sequence[Tensor]",
    bitwidths: tuple[int, ...],
    pad_to: int | None = None,
) -> Tensor:
    """Quantise + stack M candidates' conv weights in ONE fused STE node.

    The batched-soft-mode companion of :func:`mixed_quantize`: candidate
    ``m``'s weight ``(c_out_m, c_in_g, k_m, k_m)`` is fake-quantised on each
    of the Q paths with **its own** ``max_abs`` (exactly the per-tensor scale
    the serial path uses), mixed under its ``(Q,)`` Gumbel slice
    ``quant_weights[m]`` in the same accumulation order, and written into its
    rows of one stacked kernel ``(sum_m c_out_m, c_in_g, K, K)``.  Smaller
    kernels are zero-padded centred (see
    :func:`repro.autograd.ops_nn.stack_conv_weights` for why that preserves
    conv semantics).  Per candidate slice the arithmetic is bit-identical to
    ``mixed_quantize``; one tape node replaces M of them plus the stack.

    Backward uses the same straight-through identities per slice
    (``dL/dw_m = grad_m * sum_q qw_m[q]``, ``dL/dqw_m[q] = <fq_q(w_m),
    grad_m>``); a ``quant_weights`` tensor shared between candidates (the
    ``per_op``/``global`` sharing modes) appears once per candidate in the
    parent tuple and its gradient contributions accumulate.
    """
    if len(weights) != len(quant_weights) or not weights:
        raise ValueError("need one quant-weight slice per candidate weight")
    q = len(bitwidths)
    for qw in quant_weights:
        if qw.shape != (q,):
            raise ValueError(
                f"quant weights shape {qw.shape} does not match {q} bitwidths"
            )
    c_in_g = weights[0].shape[1]
    kernels = [w.shape[2] for w in weights]
    k_max = pad_to if pad_to is not None else max(kernels)
    rows = [w.shape[0] for w in weights]
    offsets = np.cumsum([0] + rows)
    for w in weights:
        if w.ndim != 4 or w.shape[1] != c_in_g or w.shape[2] != w.shape[3]:
            raise ValueError(f"incompatible candidate weight shape {w.shape}")
        if w.shape[2] > k_max or (k_max - w.shape[2]) % 2:
            raise ValueError(
                f"kernel {w.shape[2]} cannot be centred in a {k_max}x{k_max} canvas"
            )
    dtype = weights[0].data.dtype
    shape = (int(offsets[-1]), c_in_g, k_max, k_max)
    # Only mixed-kernel stacks have padding borders to zero; uniform stacks
    # overwrite every element below.
    needs_zero = any(k != k_max for k in kernels)
    pool = pool_for_op(*weights, *quant_weights)
    if pool is not None:
        paths = pool.acquire((q,) + shape, dtype, zero=needs_zero)
        out = pool.acquire(shape, dtype, zero=needs_zero)
    elif needs_zero:
        paths = np.zeros((q,) + shape, dtype=dtype)
        out = np.zeros(shape, dtype=dtype)
    else:
        paths = np.empty((q,) + shape, dtype=dtype)
        out = np.empty(shape, dtype=dtype)
    for m, (wt, qw) in enumerate(zip(weights, quant_weights)):
        x_data = wt.data
        w_data = qw.data
        k = kernels[m]
        off = (k_max - k) // 2
        window = (
            slice(offsets[m], offsets[m + 1]), slice(None),
            slice(off, off + k), slice(off, off + k),
        )
        max_abs = float(np.max(np.abs(x_data))) or 1.0
        scratch = np.empty(x_data.shape, dtype=dtype)
        out_slice = out[window]
        for idx, bits in enumerate(bitwidths):
            dest = paths[(idx,) + window]
            if bits >= 32 or max_abs < 1e-30:
                np.copyto(dest, x_data)  # the float path: quantisation is identity
            else:
                if bits < 2:
                    raise ValueError(f"cannot quantise to {bits} bits")
                levels = float(2 ** (bits - 1) - 1)
                scale = max_abs / levels
                # clip is the identity at the tensor's own max magnitude
                # (see mixed_quantize) — scale straight from the source.
                np.multiply(x_data, 1.0 / scale, out=dest)
                np.rint(dest, out=dest)
                dest *= scale
            if idx == 0:
                np.multiply(dest, w_data[0], out=out_slice)
            else:
                np.multiply(dest, w_data[idx], out=scratch)
                out_slice += scratch

    def backward(grad: np.ndarray):
        grads_w = []
        grads_qw = []
        for m, qw in enumerate(quant_weights):
            k = kernels[m]
            off = (k_max - k) // 2
            window = (
                slice(offsets[m], offsets[m + 1]), slice(None),
                slice(off, off + k), slice(off, off + k),
            )
            g_slice = grad[window]
            grads_w.append(g_slice * qw.data.sum())
            grad_qw = np.empty(q, dtype=qw.data.dtype)
            for idx in range(q):
                grad_qw[idx] = (g_slice * paths[(idx,) + window]).sum()
            grads_qw.append(grad_qw)
        return tuple(grads_w) + tuple(grads_qw)

    return make_op(
        out, tuple(weights) + tuple(quant_weights), backward,
        "mixed_quantize_stacked",
        retire=(paths,) if pool is not None and pool.owns(paths) else (),
        pooled_out=pool is not None and pool.owns(out),
    )


def fake_quantize_sliced(x: Tensor, copies: int, bits: int) -> Tensor:
    """Per-candidate activation fake-quantisation on channel slices.

    ``x`` is a stacked ``(N, copies * C, H, W)`` evaluation of ``copies``
    candidates; each slice is fake-quantised with **its own** ``max_abs``
    (the slice's max magnitude — the same per-tensor scale
    :func:`fake_quantize` derives on the serial path) in one fused STE node.
    Slice arithmetic replicates :func:`repro.autograd.ops_basic.quantize_ste`
    bit-for-bit, including the degenerate branches: an all-zero slice gets
    ``max_abs = 1.0`` and a (sub)normal-range slice (max below ``1e-30``)
    passes through as the identity with unmasked gradients.
    """
    if bits >= 32:
        return x
    if bits < 2:
        raise ValueError(f"cannot quantise to {bits} bits")
    n, c_total = x.shape[0], x.shape[1]
    if c_total % copies:
        raise ValueError(f"{c_total} channels not divisible by {copies} copies")
    c = c_total // copies
    x_data = x.data
    levels = float(2 ** (bits - 1) - 1)
    pool = pool_for_op(x)
    if pool is not None:
        out = pool.acquire(x.shape, x_data.dtype)
    else:
        out = np.empty(x.shape, dtype=x_data.dtype)
    bounds: list[float | None] = []
    for m in range(copies):
        sl = slice(m * c, (m + 1) * c)
        src = x_data[:, sl]
        dest = out[:, sl]
        max_abs = float(np.max(np.abs(src))) or 1.0
        if max_abs < 1e-30:
            np.copyto(dest, src)  # identity: the grid degenerates (see fake_quantize)
            bounds.append(None)
            continue
        scale = max_abs / levels
        # clip is the identity at the slice's own max magnitude (see
        # mixed_quantize) — scale straight from the source slice.
        np.multiply(src, 1.0 / scale, out=dest)
        np.rint(dest, out=dest)
        dest *= scale
        bounds.append(max_abs)

    def backward(grad: np.ndarray):
        grad_x = np.empty_like(grad)
        for m in range(copies):
            sl = slice(m * c, (m + 1) * c)
            max_abs = bounds[m]
            if max_abs is None:
                np.copyto(grad_x[:, sl], grad[:, sl])
            else:
                src = x_data[:, sl]
                inside = (src >= -max_abs) & (src <= max_abs)
                np.multiply(grad[:, sl], inside, out=grad_x[:, sl])
        return (grad_x,)

    return make_op(
        out, (x,), backward, "fake_quantize_sliced",
        pooled_out=pool is not None and pool.owns(out),
    )
