"""Batched soft-mode supernet evaluation: fused multi-candidate kernels.

A soft Gumbel pass (``SampledArch.hard == False``) evaluates **all M
candidate operations** of every block on the same input.  The serial
formulation — M small convs plus M muls and M-1 adds per block — is exactly
the BLAS-call-overhead-bound regime the training benchmarks identified: the
per-call dispatch dominates the arithmetic at search widths.

This module fuses each block's candidates into stacked kernels over the
shared input:

* candidates are **bucketed by depthwise kernel size**, the
  compatible-shape criterion that keeps the fused pipeline flop-neutral:
  the expand 1x1 weights concatenate along ``C_out`` into one dense conv
  (one im2col + one GEMM; differing expansion ratios just concatenate as
  ragged channel sections), the depthwise stage runs as ONE grouped conv
  with ``sum_m hidden_m`` groups at the bucket's (uniform) kernel size,
  and the ragged-width project stage collapses into one tape node of
  per-candidate GEMMs (:func:`repro.autograd.ops_nn.project_candidates`).
  An earlier expansion-ratio bucketing zero-padded mixed depthwise kernels
  to the bucket maximum; at paper widths the convolutions are
  compute-bound, and the padded im2col/input-grad flops (5.4x for a 3x3
  kernel in a 7x7 canvas) erased the dispatch savings — kernel bucketing
  does no padded arithmetic at all;
* all Q quantisation paths of a bucket's weights collapse into one fused
  STE node (:func:`repro.nas.quantization.mixed_quantize_stacked`);
* per-candidate BatchNorm runs on channel slices of the stacked tensor —
  BN is per-channel, so the fused node's statistics (and hence the running
  stats) are bit-compatible with the serial path;
* the shared residual and the per-candidate activation fake-quant are
  applied on slices *before* mixing, so semantics are unchanged;
* the Gumbel mixture ``sum_m w_m * out_m`` reduces as ONE einsum tape node
  (:func:`repro.autograd.ops_nn.mix_candidates`).

Dispatch follows the ``_conv_input_grad_phased`` pattern: the serial loop
stays as the always-on oracle, buckets below
:data:`MIN_BUCKET_CANDIDATES` fall back to it (stacking one candidate buys
nothing), skip candidates and eval-mode passes always run serial, and the
``REPRO_BATCHED_SOFT=0`` environment switch disables the batched path
entirely.  Parity: per candidate slice every fused op is arithmetically
identical to its serial counterpart; only GEMM summation order inside the
stacked convolutions changes, so batched and serial losses agree to
<= 1e-12 in float64 (bit-identical elsewhere) — enforced by
``tests/test_nas_batched_soft.py`` and the CI search-bench guard.
"""

from __future__ import annotations

import os
from collections.abc import Sequence

from repro.autograd import ops_nn
from repro.autograd.ops_shape import concat
from repro.autograd.tensor import Tensor
from repro.nas.quantization import (
    QuantizationConfig,
    fake_quantize_sliced,
    mixed_quantize,
    mixed_quantize_stacked,
)

#: Environment kill-switch: ``REPRO_BATCHED_SOFT=0`` forces every soft pass
#: onto the serial oracle (mirrors ``REPRO_BUFFER_POOL`` for the pool).
BATCHED_SOFT_ENV = "REPRO_BATCHED_SOFT"

#: Size dispatch, following the ``_conv_input_grad_phased`` pattern: a
#: bucket needs at least this many candidates before stacking beats the
#: serial loop (a singleton bucket *is* the serial evaluation plus stacking
#: overhead).
MIN_BUCKET_CANDIDATES = 2


def batched_soft_enabled() -> bool:
    """Whether batched soft-mode evaluation is enabled.

    Defaults to on; export ``REPRO_BATCHED_SOFT=0`` to pin every soft pass
    to the serial per-candidate loop (debugging / parity baselines).
    """
    return os.environ.get(BATCHED_SOFT_ENV, "1") != "0"


def _is_mbconv(candidate: object) -> bool:
    # Duck-typed (expand/dw/project stages present) to avoid a circular
    # import with repro.nas.supernet; SkipCandidate has neither.
    return hasattr(candidate, "expand") and hasattr(candidate, "dw")


def batch_norm_stacked(bns: Sequence, x: Tensor) -> Tensor:
    """Training-mode BatchNorm over per-candidate channel slices, fused.

    ``x`` stacks the candidates along channels; each candidate's
    :class:`~repro.nn.layers.BatchNorm2d` normalises its own slice.  Because
    batch normalisation is per-channel, running the fused
    :func:`~repro.autograd.ops_nn.batch_norm2d` over the stacked tensor with
    the concatenated gammas/betas computes statistics **bit-identical** to
    the per-candidate calls, and each module's running stats are updated
    from its slice of the fused statistics with the exact serial update
    arithmetic.
    """
    eps = bns[0].eps
    if any(bn.eps != eps for bn in bns):
        raise ValueError("cannot fuse BatchNorm modules with differing eps")
    gamma = concat([bn.gamma for bn in bns], axis=0)
    beta = concat([bn.beta for bn in bns], axis=0)
    out, batch_mean, batch_var = ops_nn.batch_norm2d(x, gamma, beta, eps=eps)
    offset = 0
    for bn in bns:
        c = bn.channels
        mean = batch_mean[offset : offset + c]
        var = batch_var[offset : offset + c]
        bn.running_mean = (
            (1.0 - bn.momentum) * bn.running_mean + bn.momentum * mean
        )
        bn.running_var = (
            (1.0 - bn.momentum) * bn.running_var + bn.momentum * var
        )
        offset += c
    return out


def _bucket_mixture(
    block_index: int,
    row: Sequence,
    idxs: Sequence[int],
    x: Tensor,
    sample,
    quant: QuantizationConfig | None,
) -> Tensor:
    """Evaluate one compatible-shape bucket as stacked kernels, pre-mixed.

    Returns ``sum_{m in idxs} w_m * candidate_m(x)`` computed through the
    fused pipeline: stacked-quantised weights -> dense expand conv ->
    sliced BN/ReLU6 -> one grouped depthwise conv (no kernel padding;
    uniform kernel per bucket) -> sliced BN/ReLU6 -> one ragged-group
    project node -> sliced BN -> shared residual -> sliced activation
    fake-quant -> one-einsum Gumbel mixture.
    """
    cands = [row[m] for m in idxs]
    first = cands[0]
    copies = len(cands)
    stride = first.stride
    kernel = first.op.kernel
    sections = [c.expand.out_channels for c in cands]
    expand_w = [c.expand.weight for c in cands]
    dw_w = [c.dw.weight for c in cands]
    if quant is not None:
        qws = [sample.quant_slice(block_index, m) for m in idxs]
        w1 = mixed_quantize_stacked(expand_w, qws, quant.bitwidths)
        w2 = mixed_quantize_stacked(dw_w, qws, quant.bitwidths)
        # Project weights have ragged input widths (one per expansion ratio),
        # so they cannot stack into one tensor; each still gets the fused
        # Q-path STE node before entering the single ragged-group GEMM node.
        w3s = [
            mixed_quantize(c.project.weight, qw, quant.bitwidths)
            for c, qw in zip(cands, qws)
        ]
    else:
        w1 = ops_nn.stack_conv_weights(expand_w)
        w2 = ops_nn.stack_conv_weights(dw_w)
        w3s = [c.project.weight for c in cands]

    out = ops_nn.conv2d(x, w1, stride=1, padding=0)
    out = ops_nn.relu6(batch_norm_stacked([c.bn1 for c in cands], out))
    out = ops_nn.conv2d(
        out, w2, stride=stride, padding=kernel // 2, groups=sum(sections)
    )
    out = ops_nn.relu6(batch_norm_stacked([c.bn2 for c in cands], out))
    out = ops_nn.project_candidates(out, w3s, sections)
    out = batch_norm_stacked([c.bn3 for c in cands], out)
    if first.use_residual:
        out = ops_nn.residual_add_shared(out, x, copies)
    if quant is not None and quant.activation_bits < 32:
        out = fake_quantize_sliced(out, copies, quant.activation_bits)
    gates = sample.op_weights[block_index, list(idxs)]
    return ops_nn.mix_candidates(out, gates, copies)


def soft_block_mixture(
    block_index: int,
    row: Sequence,
    x: Tensor,
    sample,
    quant: QuantizationConfig | None,
) -> Tensor:
    """One block's soft Gumbel mixture over all M candidates, batched.

    MBConv candidates are bucketed by depthwise kernel size (the shape
    compatibility the unpadded grouped depthwise stage needs — ragged
    hidden widths are fine everywhere else); each bucket of at
    least :data:`MIN_BUCKET_CANDIDATES` runs through
    :func:`_bucket_mixture`, everything else (skip candidates, singleton
    buckets) falls back to the serial per-candidate terms.  The partial
    mixtures are summed bucket-first, then serial terms in candidate order;
    versus the serial loop's strict candidate-order sum this changes only
    floating-point association (<= 1e-12 in float64).
    """
    buckets: dict[int, list[int]] = {}
    serial: list[int] = []
    for m, candidate in enumerate(row):
        if _is_mbconv(candidate):
            buckets.setdefault(candidate.op.kernel, []).append(m)
        else:
            serial.append(m)

    terms: list[Tensor] = []
    for idxs in sorted(buckets.values(), key=lambda group: group[0]):
        if len(idxs) < MIN_BUCKET_CANDIDATES:
            serial.extend(idxs)
            continue
        terms.append(_bucket_mixture(block_index, row, idxs, x, sample, quant))
    for m in sorted(serial):
        quant_weights = (
            sample.quant_slice(block_index, m) if quant is not None else None
        )
        terms.append(
            row[m](x, quant_weights=quant_weights)
            * sample.op_weights[block_index, m]
        )

    mixed = terms[0]
    for term in terms[1:]:
        mixed = mixed + term
    return mixed
