"""Weight inheritance from the supernet into the derived network.

After derivation the paper retrains the searched DNN from scratch; in
practice (and in most NAS releases) warm-starting the child with the
supernet's trained weights cuts the retraining budget substantially, because
the selected candidates were exactly the modules trained during the search.

``inherit_weights`` walks the derived spec alongside the supernet: the fixed
stem/head map one-to-one, each surviving MBConv block copies from the chosen
candidate at its position (skip blocks copy their projection, identity skips
vanish), and BatchNorm running statistics come along so eval-mode behaviour
matches immediately.  Returns the number of parameter tensors copied.
"""

from __future__ import annotations

from repro.nas.arch_spec import ConvBlock, FCBlock, MBConvBlock, SepConvBlock, StemBlock
from repro.nas.network import BuiltNetwork, _ConvUnit, _FCUnit, _MBConvUnit, _SepConvUnit
from repro.nas.supernet import MBConvCandidate, SkipCandidate, SuperNet


def _copy_conv_bn(dst: _ConvUnit, src_conv, src_bn) -> int:
    if dst.conv.weight.shape != src_conv.weight.shape:
        raise ValueError(
            f"weight shape mismatch: child {dst.conv.weight.shape} vs "
            f"supernet {src_conv.weight.shape}"
        )
    dst.conv.weight.data = src_conv.weight.data.copy()
    dst.bn.gamma.data = src_bn.gamma.data.copy()
    dst.bn.beta.data = src_bn.beta.data.copy()
    dst.bn.running_mean = src_bn.running_mean.copy()
    dst.bn.running_var = src_bn.running_var.copy()
    return 3  # weight + gamma + beta


def _copy_mbconv(dst: _MBConvUnit, src: MBConvCandidate) -> int:
    copied = 0
    copied += _copy_conv_bn(dst.expand, src.expand, src.bn1)
    copied += _copy_conv_bn(dst.dw, src.dw, src.bn2)
    copied += _copy_conv_bn(dst.project, src.project, src.bn3)
    return copied


def inherit_weights(supernet: SuperNet, built: BuiltNetwork) -> int:
    """Copy supernet weights into a network built from its derived spec.

    The spec must have been produced by :func:`repro.nas.derive.derive_arch_spec`
    on this supernet (the op choices are re-read from the Theta argmax).
    """
    space = supernet.space
    spec = built.spec
    chosen = supernet.theta.data.argmax(axis=-1)
    menu = space.candidate_ops()

    copied = 0
    units = iter(zip(spec.blocks, built._units))

    def next_unit(expected_type):
        block, unit = next(units)
        if not isinstance(unit, expected_type):
            raise ValueError(
                f"unexpected unit {type(unit).__name__} for block "
                f"{block.describe()}; expected {expected_type.__name__}"
            )
        return block, unit

    # Fixed stem: StemBlock / SepConvBlock / ConvBlock(1x1).
    _, stem_unit = next_unit(_ConvUnit)
    copied += _copy_conv_bn(stem_unit, supernet.stem_conv.conv, supernet.stem_conv.bn)
    _, sep_unit = next_unit(_SepConvUnit)
    copied += _copy_conv_bn(sep_unit.dw, supernet.stem_dw, supernet.stem_dw_bn)
    copied += _copy_conv_bn(sep_unit.pw, supernet.stem_pw.conv, supernet.stem_pw.bn)
    # The builder's SepConv projects straight to trunk channels; the supernet
    # additionally applies stem_out (1x1).  The spec carries both blocks.
    _, pre_unit = next_unit(_ConvUnit)
    copied += _copy_conv_bn(pre_unit, supernet.stem_out.conv, supernet.stem_out.bn)

    # Searchable blocks: walk positions; identity skips have no unit.
    in_channels = space.block_input_channels()
    for i in range(space.num_blocks):
        op = menu[int(chosen[i])]
        candidate = supernet.candidate(i, int(chosen[i]))
        if op.is_skip:
            identity = (
                space.block_strides[i] == 1
                and in_channels[i] == space.block_channels[i]
            )
            if identity:
                continue  # block vanished from the spec
            assert isinstance(candidate, SkipCandidate)
            _, proj_unit = next_unit(_ConvUnit)
            copied += _copy_conv_bn(proj_unit, candidate.proj, candidate.bn)
            continue
        assert isinstance(candidate, MBConvCandidate)
        _, mb_unit = next_unit(_MBConvUnit)
        copied += _copy_mbconv(mb_unit, candidate)

    # Fixed head: Conv1x1 then FC.
    _, head_unit = next_unit(_ConvUnit)
    copied += _copy_conv_bn(head_unit, supernet.head.conv, supernet.head.bn)
    _, fc_unit = next_unit(_FCUnit)
    fc_unit.linear.weight.data = supernet.classifier.weight.data.copy()
    if supernet.classifier.bias is not None and fc_unit.linear.bias is not None:
        fc_unit.linear.bias.data = supernet.classifier.bias.data.copy()
    copied += 2
    return copied
