"""Build a trainable network from an :class:`ArchSpec`.

Used to retrain derived architectures from scratch (the paper's final step in
Sec. 5) and to train scaled-down zoo baselines on the synthetic proxy task.
Supports the full block vocabulary: stem / MBConv / separable / plain conv /
max- and avg-pooling / parallel branches (residuals, inception modules) /
GAP- and flatten-style fully connected heads — so every zoo network can be
instantiated, not just the MBConv family.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import ops_nn
from repro.autograd.ops_shape import concat, flatten as flatten_op
from repro.autograd.tensor import Tensor
from repro.nas.arch_spec import (
    ArchSpec,
    Branches,
    ConvBlock,
    FCBlock,
    MBConvBlock,
    PoolBlock,
    SepConvBlock,
    StemBlock,
)
from repro.nas.quantization import fake_quantize
from repro.nn.layers import BatchNorm2d, Conv2d, Linear
from repro.nn.module import Module
from repro.utils.rng import spawn_rngs


class _ConvUnit(Module):
    """conv -> BN -> ReLU6 with optional weight fake-quantisation."""

    def __init__(self, in_ch: int, out_ch: int, kernel: int, stride: int,
                 groups: int, rng: np.random.Generator, act: bool = True) -> None:
        super().__init__()
        self.conv = Conv2d(in_ch, out_ch, kernel, stride=stride, groups=groups, rng=rng)
        self.bn = BatchNorm2d(out_ch)
        self.act = act

    def forward(self, x: Tensor, bits: int | None = None) -> Tensor:
        weight = self.conv.weight if not bits else fake_quantize(self.conv.weight, bits)
        out = ops_nn.conv2d(
            x, weight, stride=self.conv.stride,
            padding=self.conv.padding, groups=self.conv.groups,
        )
        out = self.bn(out)
        return ops_nn.relu6(out) if self.act else out


class _MBConvUnit(Module):
    def __init__(self, in_ch: int, block: MBConvBlock, rng: np.random.Generator) -> None:
        super().__init__()
        hidden = in_ch * block.expansion
        self.use_residual = block.stride == 1 and in_ch == block.out_ch
        self.expand = _ConvUnit(in_ch, hidden, 1, 1, 1, rng)
        self.dw = _ConvUnit(hidden, hidden, block.kernel, block.stride, hidden, rng)
        self.project = _ConvUnit(hidden, block.out_ch, 1, 1, 1, rng, act=False)

    def forward(self, x: Tensor, bits: int | None = None) -> Tensor:
        out = self.project(self.dw(self.expand(x, bits), bits), bits)
        return out + x if self.use_residual else out


class _SepConvUnit(Module):
    def __init__(self, in_ch: int, block: SepConvBlock, rng: np.random.Generator) -> None:
        super().__init__()
        self.dw = _ConvUnit(in_ch, in_ch, block.kernel, block.stride, in_ch, rng)
        self.pw = _ConvUnit(in_ch, block.out_ch, 1, 1, 1, rng, act=False)

    def forward(self, x: Tensor, bits: int | None = None) -> Tensor:
        return self.pw(self.dw(x, bits), bits)


class _PoolUnit(Module):
    def __init__(self, block: PoolBlock) -> None:
        super().__init__()
        self.kernel = block.kernel
        self.stride = block.stride
        self.mode = block.mode
        # 'Same'-style padding so the geometry matches ArchSpec's ceil rule.
        self.padding = block.kernel // 2 if block.kernel != block.stride else 0

    def forward(self, x: Tensor, bits: int | None = None) -> Tensor:
        if self.mode == "max":
            return ops_nn.max_pool2d(
                x, self.kernel, stride=self.stride, padding=self.padding
            )
        return ops_nn.avg_pool2d(x, self.kernel)


class _BranchesUnit(Module):
    """Parallel branches combined by concat (inception) or add (residual)."""

    def __init__(self, in_ch: int, block: Branches, rng: np.random.Generator) -> None:
        super().__init__()
        self.combine = block.combine
        self._branches: list[list[Module]] = []
        for b_idx, branch in enumerate(block.branches):
            units: list[Module] = []
            ch = in_ch
            for u_idx, sub in enumerate(branch):
                unit, ch = _build_unit(ch, sub, rng)
                setattr(self, f"branch{b_idx}_unit{u_idx}", unit)
                units.append(unit)
            self._branches.append(units)

    def forward(self, x: Tensor, bits: int | None = None) -> Tensor:
        outputs = []
        for units in self._branches:
            out = x
            for unit in units:
                out = unit(out, bits)
            outputs.append(out)
        if self.combine == "add":
            total = outputs[0]
            for out in outputs[1:]:
                total = total + out
            return total
        return concat(outputs, axis=1)


class _FCUnit(Module):
    """Fully connected stage: GAP or flatten on 4-D input, then linear.

    Inner FC units apply ReLU; the builder disables it on the final
    classifier stage.
    """

    def __init__(self, in_features: int, block: FCBlock,
                 rng: np.random.Generator, act: bool) -> None:
        super().__init__()
        self.flatten = block.flatten
        self.act = act
        self.linear = Linear(in_features, block.out_features, rng=rng)

    def forward(self, x: Tensor, bits: int | None = None) -> Tensor:
        if x.ndim == 4:
            x = flatten_op(x) if self.flatten else ops_nn.global_avg_pool2d(x)
        weight = self.linear.weight if not bits else fake_quantize(self.linear.weight, bits)
        out = ops_nn.linear(x, weight, self.linear.bias)
        return ops_nn.relu(out) if self.act else out


def _build_unit(in_ch: int, block, rng: np.random.Generator) -> tuple[Module, int]:
    """Instantiate one block; returns (unit, out_channels)."""
    if isinstance(block, (StemBlock, ConvBlock)):
        groups = getattr(block, "groups", 1)
        return _ConvUnit(in_ch, block.out_ch, block.kernel, block.stride, groups, rng), block.out_ch
    if isinstance(block, MBConvBlock):
        return _MBConvUnit(in_ch, block, rng), block.out_ch
    if isinstance(block, SepConvBlock):
        return _SepConvUnit(in_ch, block, rng), block.out_ch
    if isinstance(block, PoolBlock):
        return _PoolUnit(block), in_ch
    if isinstance(block, Branches):
        unit = _BranchesUnit(in_ch, block, rng)
        _, out_ch, _, _ = block.expand(in_ch, 64, 64, -1)  # channel count only
        return unit, out_ch
    raise TypeError(
        f"build_network cannot instantiate block type {type(block).__name__}"
    )


class BuiltNetwork(Module):
    """A concrete network assembled from an ArchSpec.

    ``forward(x, bits=...)`` fake-quantises every conv/linear weight to
    ``bits`` (or the spec's annotated ``weight_bits`` when ``bits`` is
    omitted and the spec carries one), reproducing Table 2's precision sweep.
    """

    def __init__(self, spec: ArchSpec, seed: int | None = None) -> None:
        super().__init__()
        self.spec = spec
        if not spec.blocks or not isinstance(spec.blocks[-1], FCBlock):
            raise ValueError(f"spec {spec.name!r} must end in an FCBlock classifier")
        rngs = spawn_rngs(seed, len(spec.blocks))
        self._units: list[Module] = []
        ch = spec.input_channels
        # Track FC-chain input features once the spatial part ends.
        fc_features: int | None = None
        geometry = None
        for i, block in enumerate(spec.blocks):
            rng = rngs[i]
            if isinstance(block, FCBlock):
                if fc_features is None:
                    if block.flatten:
                        if geometry is None:
                            # Resolve the spatial size feeding this FC.
                            layers = spec.layers()
                            fc_layer = next(
                                l for l in layers
                                if l.kind == "fc" and l.block_index == i
                            )
                            fc_features = fc_layer.in_ch
                        else:
                            fc_features = ch * geometry[0] * geometry[1]
                    else:
                        fc_features = ch
                is_last = i == len(spec.blocks) - 1
                unit: Module = _FCUnit(fc_features, block, rng, act=not is_last)
                fc_features = block.out_features
            else:
                if fc_features is not None:
                    raise ValueError(
                        f"spec {spec.name!r}: spatial block after FC blocks"
                    )
                unit, ch = _build_unit(ch, block, rng)
            setattr(self, f"unit{i}", unit)
            self._units.append(unit)
        # Keep a handle on the final linear layer (useful for inspection).
        self.classifier = self._units[-1].linear

    @property
    def units(self) -> tuple[Module, ...]:
        """The per-block modules in execution order (read-only view).

        This is the traversal surface :func:`repro.runtime.compile_spec`
        lowers from — one unit per spec block, same order as ``forward``.
        """
        return tuple(self._units)

    def forward(self, x: Tensor, bits: int | None = None) -> Tensor:
        if bits is None:
            bits = self.spec.weight_bits
        for unit in self._units:
            x = unit(x, bits)
        return x


def build_network(spec: ArchSpec, seed: int | None = None) -> BuiltNetwork:
    """Instantiate a trainable module for ``spec`` (weights from ``seed``)."""
    return BuiltNetwork(spec, seed=seed)
