"""Architecture derivation: argmax over the learned sampling parameters.

After the co-search converges, the final DNN keeps the candidate with the
largest Theta logit per block and the bit-width with the largest Phi logit
per op (Sec. 2 / Sec. 5 of the paper).  The result is an :class:`ArchSpec`
annotated with the chosen quantisation so device models and the trainer can
consume it directly.
"""

from __future__ import annotations

import numpy as np

from repro.nas.arch_spec import ArchSpec
from repro.nas.space import CandidateOp, SearchSpaceConfig
from repro.nas.supernet import SuperNet


def chosen_ops(theta: np.ndarray, space: SearchSpaceConfig) -> list[CandidateOp]:
    """Map argmax Theta rows onto candidate operations."""
    if theta.shape != (space.num_blocks, space.num_ops):
        raise ValueError(
            f"theta shape {theta.shape} does not match space "
            f"({space.num_blocks}, {space.num_ops})"
        )
    ops = space.candidate_ops()
    return [ops[int(m)] for m in theta.argmax(axis=-1)]


def chosen_bitwidths(
    phi: np.ndarray,
    bitwidths: tuple[int, ...],
    op_choices: np.ndarray,
) -> list[int]:
    """Per-block bit-width after argmax derivation.

    ``phi`` may be (N, M, Q), (M, Q) or (Q,) depending on the sharing mode;
    ``op_choices`` is the (N,) array of selected op indices, used to look up
    the right Phi row where quantisation is per-op.
    """
    if phi.ndim == 3:
        return [
            int(bitwidths[int(phi[i, int(m)].argmax())])
            for i, m in enumerate(op_choices)
        ]
    if phi.ndim == 2:
        return [int(bitwidths[int(phi[int(m)].argmax())]) for m in op_choices]
    shared = int(bitwidths[int(phi.argmax())])
    return [shared] * len(op_choices)


def derive_arch_spec(supernet: SuperNet, name: str = "EDD-searched") -> ArchSpec:
    """Derive the final architecture (and bit-widths) from a trained supernet."""
    space = supernet.space
    theta = supernet.theta.data
    ops = chosen_ops(theta, space)
    spec = space.spec_for_choices(ops, name=name)

    if supernet.quant is not None:
        op_idx = theta.argmax(axis=-1)
        bits = chosen_bitwidths(supernet.phi.data, supernet.quant.bitwidths, op_idx)
        spec.metadata["block_bits"] = bits
        # A single network-wide precision (GPU mode) is also exposed flat.
        if supernet.quant.sharing == "global":
            spec.weight_bits = bits[0]
        else:
            spec.weight_bits = int(round(float(np.mean(bits))))
        spec.metadata["activation_bits"] = supernet.quant.activation_bits
    spec.metadata["op_labels"] = [op.label for op in ops]
    return spec
