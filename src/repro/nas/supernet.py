"""The single-path supernet (the blue half of the paper's Fig. 1).

Structure: fixed stem (Conv3x3/s2 -> SepConv -> Conv1x1) -> N searchable
blocks, each holding M :class:`MBConvCandidate` modules -> fixed head
(Conv1x1 -> GAP -> FC).  A forward pass takes a :class:`SampledArch` — one
Gumbel-Softmax draw of operation choices (``Theta``) and quantisation choices
(``Phi``) — and evaluates **only the sampled branch** per block, multiplied
by the straight-through sample weight so gradients still reach the sampling
parameters.  This is the Gumbel-sampling memory/speed advantage the paper
cites over DARTS-style weighted sums (Sec. 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd import ops_nn
from repro.autograd.tensor import Tensor
from repro.nas.batched import batched_soft_enabled, soft_block_mixture
from repro.nas.gumbel import GumbelSoftmax
from repro.nas.quantization import QuantizationConfig, fake_quantize, mixed_quantize
from repro.nn.layers import BatchNorm2d, Conv2d, DepthwiseConv2d, Linear
from repro.nn.module import Module, Parameter
from repro.nas.space import CandidateOp, SearchSpaceConfig
from repro.utils.numeric import stable_softmax
from repro.utils.rng import spawn_rngs

ARCH_PARAMETER_NAMES = ("theta", "phi")


@dataclass
class SampledArch:
    """One joint draw from the fused design space ``{Theta, Phi}``.

    ``op_weights`` is the (N, M) straight-through sample of Theta (row-wise
    one-hot in the forward pass); ``quant_weights`` is the Phi sample shaped
    by the sharing mode.  The same object is consumed by the supernet forward
    (accuracy path) and by the device models (performance/resource path), so
    both losses are evaluated on the *same* sampled implementation — the
    "simultaneous" in the paper's title.
    """

    op_weights: Tensor
    quant_weights: Tensor
    op_indices: list[int]
    sharing: str
    hard: bool = True

    def quant_slice(self, block: int, op: int) -> Tensor:
        """The (Q,) quantisation weights applying to candidate (block, op)."""
        if self.sharing == "per_block_op":
            return self.quant_weights[block, op]
        if self.sharing == "per_op":
            return self.quant_weights[op]
        return self.quant_weights

    def quant_indices(self) -> np.ndarray:
        """Argmax bit-width index per Phi row (shape = phi shape minus Q)."""
        return self.quant_weights.data.argmax(axis=-1)


def constant_sample(
    space: SearchSpaceConfig,
    quant: QuantizationConfig | None,
    op_indices: list[int],
    bit_indices: np.ndarray | int = 0,
) -> SampledArch:
    """A deterministic (no-noise, no-gradient) SampledArch from explicit choices.

    Useful for evaluating a *fixed* architecture/implementation through the
    differentiable device models: random-search baselines, ablations, and
    tests all use this to probe ``Perf_loss``/``RES`` at specific points of
    the fused space.
    """
    n, m = space.num_blocks, space.num_ops
    if len(op_indices) != n:
        raise ValueError(f"need {n} op indices, got {len(op_indices)}")
    op_w = np.zeros((n, m))
    op_w[np.arange(n), op_indices] = 1.0
    if quant is None:
        return SampledArch(
            op_weights=Tensor(op_w),
            quant_weights=Tensor(np.ones((1,))),
            op_indices=list(op_indices),
            sharing="global",
            hard=True,
        )
    shape = quant.phi_shape(n, m)
    quant_w = np.zeros(shape)
    bit_idx = np.broadcast_to(np.asarray(bit_indices), shape[:-1])
    flat = quant_w.reshape(-1, quant.num_levels)
    flat[np.arange(flat.shape[0]), bit_idx.reshape(-1).astype(int)] = 1.0
    return SampledArch(
        op_weights=Tensor(op_w),
        quant_weights=Tensor(quant_w),
        op_indices=list(op_indices),
        sharing=quant.sharing,
        hard=True,
    )


class ConvBNAct(Module):
    """Conv -> BatchNorm -> ReLU6, the stem/head building unit."""

    def __init__(self, in_ch: int, out_ch: int, kernel: int, stride: int,
                 rng: np.random.Generator, groups: int = 1, act: bool = True) -> None:
        super().__init__()
        self.conv = Conv2d(in_ch, out_ch, kernel, stride=stride, groups=groups, rng=rng)
        self.bn = BatchNorm2d(out_ch)
        self.act = act

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn(self.conv(x))
        return ops_nn.relu6(out) if self.act else out


class SkipCandidate(Module):
    """Depth-search candidate: identity, or a pointwise projection when the
    block must change channels/resolution.

    The identity form ignores quantisation (there is nothing to quantise);
    the projection form quantises its 1x1 weights like any other candidate.
    """

    def __init__(self, in_ch: int, out_ch: int, stride: int,
                 quant: QuantizationConfig | None, rng: np.random.Generator) -> None:
        super().__init__()
        self.quant = quant
        self.identity = stride == 1 and in_ch == out_ch
        self.use_residual = False
        if not self.identity:
            self.proj = Conv2d(in_ch, out_ch, 1, stride=stride, rng=rng)
            self.bn = BatchNorm2d(out_ch)

    def forward(self, x: Tensor, quant_weights: Tensor | None = None) -> Tensor:
        if self.identity:
            return x
        weight = self.proj.weight
        if quant_weights is not None and self.quant is not None:
            weight = mixed_quantize(weight, quant_weights, self.quant.bitwidths)
        out = ops_nn.conv2d(x, weight, stride=self.proj.stride, padding=0)
        return self.bn(out)


class MBConvCandidate(Module):
    """One candidate operation: expand 1x1 -> depthwise kxk -> project 1x1.

    The forward optionally applies a Gumbel-weighted quantisation mixture to
    every conv weight (Stage-1 of the implementation formulation); the
    straight-through estimator keeps the whole path differentiable with
    respect to both the weights and the Phi sampling parameters.
    """

    def __init__(self, in_ch: int, out_ch: int, stride: int, op: CandidateOp,
                 quant: QuantizationConfig | None, rng: np.random.Generator) -> None:
        super().__init__()
        hidden = in_ch * op.expansion
        self.op = op
        self.stride = stride
        self.quant = quant
        self.use_residual = stride == 1 and in_ch == out_ch
        self.expand = Conv2d(in_ch, hidden, 1, rng=rng)
        self.bn1 = BatchNorm2d(hidden)
        self.dw = DepthwiseConv2d(hidden, op.kernel, stride=stride, rng=rng)
        self.bn2 = BatchNorm2d(hidden)
        self.project = Conv2d(hidden, out_ch, 1, rng=rng)
        self.bn3 = BatchNorm2d(out_ch)

    def _weight(self, layer: Conv2d, quant_weights: Tensor | None) -> Tensor:
        if quant_weights is None or self.quant is None:
            return layer.weight
        return mixed_quantize(layer.weight, quant_weights, self.quant.bitwidths)

    def forward(self, x: Tensor, quant_weights: Tensor | None = None) -> Tensor:
        w1 = self._weight(self.expand, quant_weights)
        out = ops_nn.conv2d(x, w1, stride=1, padding=0)
        out = ops_nn.relu6(self.bn1(out))
        w2 = self._weight(self.dw, quant_weights)
        out = ops_nn.conv2d(
            out, w2, stride=self.stride, padding=self.dw.padding, groups=self.dw.groups
        )
        out = ops_nn.relu6(self.bn2(out))
        w3 = self._weight(self.project, quant_weights)
        out = ops_nn.conv2d(out, w3, stride=1, padding=0)
        out = self.bn3(out)
        if self.use_residual:
            out = out + x
        if self.quant is not None and self.quant.activation_bits < 32:
            out = fake_quantize(out, self.quant.activation_bits)
        return out


class SuperNet(Module):
    """Supernet over the fused search space.

    Parameters
    ----------
    space:
        Block/channel geometry and the candidate menu.
    quant:
        Quantisation menu and sharing mode; ``None`` searches architecture
        only (the fixed-implementation baseline).
    seed:
        Controls weight initialisation (deterministic given the seed).
    """

    def __init__(self, space: SearchSpaceConfig,
                 quant: QuantizationConfig | None = None,
                 seed: int | None = None) -> None:
        super().__init__()
        self.space = space
        self.quant = quant
        rngs = spawn_rngs(seed, space.num_blocks * space.num_ops + 3)
        stem_rng, head_rng, fc_rng = rngs[-3], rngs[-2], rngs[-1]

        # Fixed stem: Conv3x3/s2 -> SepConv3x3 -> Conv1x1 (Fig. 4 left edge).
        self.stem_conv = ConvBNAct(space.input_channels, space.stem_channels, 3, 2, stem_rng)
        self.stem_dw = DepthwiseConv2d(space.stem_channels, 3, rng=stem_rng)
        self.stem_dw_bn = BatchNorm2d(space.stem_channels)
        # SepConv projection is linear (no activation), MobileNetV2-style —
        # and matching repro.nas.network's builder so weight inheritance is
        # forward-exact.
        self.stem_pw = ConvBNAct(space.stem_channels, space.trunk_channels, 1, 1,
                                 stem_rng, act=False)
        self.stem_out = ConvBNAct(space.trunk_channels, space.pre_block_channels, 1, 1, stem_rng)

        # Searchable blocks: N x M candidates (skip last when depth search on).
        ops = space.candidate_ops()
        self._candidates: list[list[Module]] = []
        in_channels = space.block_input_channels()
        for i in range(space.num_blocks):
            row: list[Module] = []
            for m, op in enumerate(ops):
                candidate: Module
                if op.is_skip:
                    candidate = SkipCandidate(
                        in_ch=in_channels[i],
                        out_ch=space.block_channels[i],
                        stride=space.block_strides[i],
                        quant=quant,
                        rng=rngs[i * space.num_ops + m],
                    )
                else:
                    candidate = MBConvCandidate(
                        in_ch=in_channels[i],
                        out_ch=space.block_channels[i],
                        stride=space.block_strides[i],
                        op=op,
                        quant=quant,
                        rng=rngs[i * space.num_ops + m],
                    )
                setattr(self, f"block{i}_op{m}", candidate)
                row.append(candidate)
            self._candidates.append(row)

        # Fixed head: Conv1x1 -> GAP -> FC.
        self.head = ConvBNAct(space.block_channels[-1], space.head_channels, 1, 1, head_rng)
        self.classifier = Linear(space.head_channels, space.num_classes, rng=fc_rng)

        # Architecture sampling parameters (zero logits = uniform start).
        self.theta = Parameter(np.zeros((space.num_blocks, space.num_ops)))
        q_levels = quant.num_levels if quant is not None else 1
        phi_shape = (
            quant.phi_shape(space.num_blocks, space.num_ops)
            if quant is not None
            else (1,)
        )
        self.phi = Parameter(np.zeros(phi_shape))
        self._q_levels = q_levels

    # -- parameter partition ---------------------------------------------------
    def arch_parameters(self) -> list[Parameter]:
        """The fused search variables Theta and Phi (pf lives in the hw model)."""
        return [self.theta, self.phi]

    def weight_parameters(self) -> list[Parameter]:
        """DNN weights ``w`` — everything that is not a sampling parameter."""
        return [
            p
            for name, p in self.named_parameters()
            if name.split(".")[-1] not in ARCH_PARAMETER_NAMES
        ]

    # -- sampling ----------------------------------------------------------------
    def sample(self, sampler: GumbelSoftmax, hard: bool = True) -> SampledArch:
        """Draw a joint (Theta, Phi) sample for one feed-forward pass.

        ``hard=True`` is the paper's memory-efficient single-path mode: the
        forward pass evaluates only the sampled candidate per block.  Note
        that because every candidate ends in (and is followed by) BatchNorm,
        the scalar straight-through gate is almost scale-invariant, so the
        *accuracy* gradient reaching Theta is weak in this mode (the
        performance gradient of Eqs. 4-5 is unaffected).  ``hard=False``
        evaluates all M candidates under soft Gumbel weights (FBNet-style),
        giving Theta a full accuracy gradient.  Since the batched soft path
        (:mod:`repro.nas.batched`, ``REPRO_BATCHED_SOFT``) fuses each
        block's candidates into stacked kernels over the shared input, the
        measured cost is well below the M-times-a-hard-pass of the naive
        serial loop — ``BENCH_search.json`` records the serial-vs-batched
        ratio per block shape on this box.  The co-search defaults to hard
        weight steps and soft architecture steps;
        ``benchmarks/bench_ablation_gumbel.py`` quantifies the trade-off.
        """
        op_weights = sampler.sample(self.theta, hard=hard, axis=-1)
        if self.quant is not None:
            quant_weights = sampler.sample(self.phi, hard=hard, axis=-1)
        else:
            quant_weights = Tensor(np.ones((1,)))
        op_indices = [int(i) for i in op_weights.data.argmax(axis=-1)]
        sharing = self.quant.sharing if self.quant is not None else "global"
        return SampledArch(
            op_weights=op_weights,
            quant_weights=quant_weights,
            op_indices=op_indices,
            sharing=sharing,
            hard=hard,
        )

    def candidate(self, block: int, op: int) -> Module:
        return self._candidates[block][op]

    # -- forward ---------------------------------------------------------------
    def forward(self, x: Tensor, sample: SampledArch | None = None,
                sampler: GumbelSoftmax | None = None) -> Tensor:
        """Classify a batch under one sampled architecture.

        Either pass a pre-drawn ``sample`` (so callers can reuse it for the
        performance formulas) or a ``sampler`` to draw one internally.
        """
        if sample is None:
            if sampler is None:
                raise ValueError("provide either a SampledArch or a GumbelSoftmax sampler")
            sample = self.sample(sampler)

        out = self.stem_conv(x)
        out = ops_nn.relu6(self.stem_dw_bn(
            ops_nn.conv2d(out, self.stem_dw.weight, stride=1,
                          padding=self.stem_dw.padding, groups=self.stem_dw.groups)
        ))
        out = self.stem_pw(out)
        out = self.stem_out(out)

        for i, row in enumerate(self._candidates):
            if sample.hard:
                # Single-path mode: evaluate only the sampled candidate.  The
                # straight-through gate has forward value 1 but carries the
                # gradient back to theta[i, m].
                m = sample.op_indices[i]
                quant_weights = (
                    sample.quant_slice(i, m) if self.quant is not None else None
                )
                gate = sample.op_weights[i, m]
                out = row[m](out, quant_weights=quant_weights) * gate
            else:
                # Weighted mode: Gumbel-soft mixture over all M candidates,
                # the differentiable expectation matching Eqs. 2-5.  The
                # batched path fuses each block's candidates into stacked
                # kernels (repro.nas.batched); the serial loop below remains
                # the always-on oracle and handles eval-mode passes (running
                # BN statistics) and the REPRO_BATCHED_SOFT=0 kill switch.
                if self.training and batched_soft_enabled():
                    out = soft_block_mixture(i, row, out, sample, self.quant)
                else:
                    out = self._soft_mixture_serial(i, row, out, sample)

        out = self.head(out)
        out = ops_nn.global_avg_pool2d(out)
        return self.classifier(out)

    def _soft_mixture_serial(
        self, i: int, row: list[Module], x: Tensor, sample: SampledArch
    ) -> Tensor:
        """Serial per-candidate soft mixture — the batched path's oracle.

        Evaluates candidate by candidate in index order (M small convs, M
        muls, M-1 adds).  Kept verbatim as the reference semantics: the
        batched evaluator falls back to it per candidate, and the parity
        tests/benchmarks compare against it.
        """
        mixed: Tensor | None = None
        for m, candidate in enumerate(row):
            quant_weights = (
                sample.quant_slice(i, m) if self.quant is not None else None
            )
            term = candidate(x, quant_weights=quant_weights) * sample.op_weights[i, m]
            mixed = term if mixed is None else mixed + term
        assert mixed is not None
        return mixed

    # -- introspection ------------------------------------------------------------
    def theta_probabilities(self) -> np.ndarray:
        """Softmax of Theta per block — the op-selection distribution."""
        return stable_softmax(self.theta.data, axis=-1)

    def phi_probabilities(self) -> np.ndarray:
        """Softmax of Phi along the bit-width axis."""
        return stable_softmax(self.phi.data, axis=-1)
