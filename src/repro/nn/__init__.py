"""Neural-network layer library built on :mod:`repro.autograd`.

Provides the Module/Parameter abstraction, the layers MBConv needs (pointwise
and depthwise convolutions, batch-norm, ReLU6), classification losses and
SGD/Adam optimisers with learning-rate schedules.
"""

from repro.nn.module import Module, Parameter
from repro.nn.containers import ModuleList, Sequential
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    ReLU6,
)
from repro.nn.functional import accuracy, cross_entropy, nll_loss, topk_accuracy
from repro.nn.optim import SGD, Adam, CosineSchedule, StepSchedule

__all__ = [
    "Adam",
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "CosineSchedule",
    "DepthwiseConv2d",
    "GlobalAvgPool2d",
    "Identity",
    "Linear",
    "MaxPool2d",
    "Module",
    "ModuleList",
    "Parameter",
    "ReLU",
    "ReLU6",
    "SGD",
    "Sequential",
    "StepSchedule",
    "accuracy",
    "cross_entropy",
    "nll_loss",
    "topk_accuracy",
]
