"""Module / Parameter abstraction (a deliberately small torch.nn.Module).

Modules register parameters and sub-modules automatically via attribute
assignment, support train/eval mode propagation, and expose ``parameters()``
and ``state_dict``-style persistence.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as trainable by enclosing modules."""

    def __init__(self, data: Any) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for layers and models.

    Attribute assignment registers :class:`Parameter` and :class:`Module`
    children in declaration order, so iteration is deterministic.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_buffers", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value: Any) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        elif name in getattr(self, "_buffers", {}):
            # Re-assignments to a registered buffer (BatchNorm rewrites its
            # running stats every training forward) stay tracked.
            self._buffers[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Track ``value`` as non-trainable persistent state (e.g. BN stats).

        Buffers travel with the module through :meth:`buffers_dict` /
        :meth:`load_buffers_dict` and are captured by search checkpoints, but
        they are not parameters: no gradients, not returned by
        :meth:`parameters`.  Plain attribute assignment to ``name`` after
        registration keeps the buffer registry in sync.

        Args:
            name: Attribute name to register.
            value: Array stored under that name.
        """
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # -- forward ------------------------------------------------------------
    def forward(self, *args: Any, **kwargs: Any) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args: Any, **kwargs: Any) -> Tensor:
        return self.forward(*args, **kwargs)

    # -- traversal ----------------------------------------------------------
    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(dotted_name, array)`` for every registered buffer."""
        for name, value in self._buffers.items():
            yield (f"{prefix}{name}", value)
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    # -- mode ---------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for child in self.children():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- persistence ----------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter keyed by dotted path."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = own.keys() - state.keys()
        unexpected = state.keys() - own.keys()
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"parameter {param.shape} vs state {value.shape}"
                )
            param.data = value.copy()

    def buffers_dict(self) -> dict[str, np.ndarray]:
        """Copy of every registered buffer keyed by dotted path."""
        return {name: np.array(value) for name, value in self.named_buffers()}

    def load_buffers_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore buffers saved by :meth:`buffers_dict`.

        Unknown names raise ``KeyError``; names absent from ``state`` are left
        untouched (old checkpoints may predate a buffer).
        """
        index: dict[str, tuple[Module, str]] = {}

        def _collect(module: Module, prefix: str) -> None:
            for name in module._buffers:
                index[f"{prefix}{name}"] = (module, name)
            for child_name, child in module._modules.items():
                _collect(child, f"{prefix}{child_name}.")

        _collect(self, "")
        unexpected = state.keys() - index.keys()
        if unexpected:
            raise KeyError(f"unknown buffers in state: {sorted(unexpected)}")
        for name, value in state.items():
            module, attr = index[name]
            setattr(module, attr, np.array(value))
