"""Module / Parameter abstraction (a deliberately small torch.nn.Module).

Modules register parameters and sub-modules automatically via attribute
assignment, support train/eval mode propagation, and expose ``parameters()``
and ``state_dict``-style persistence.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as trainable by enclosing modules."""

    def __init__(self, data: Any) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for layers and models.

    Attribute assignment registers :class:`Parameter` and :class:`Module`
    children in declaration order, so iteration is deterministic.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value: Any) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # -- forward ------------------------------------------------------------
    def forward(self, *args: Any, **kwargs: Any) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args: Any, **kwargs: Any) -> Tensor:
        return self.forward(*args, **kwargs)

    # -- traversal ----------------------------------------------------------
    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    # -- mode ---------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for child in self.children():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- persistence ----------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter keyed by dotted path."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = own.keys() - state.keys()
        unexpected = state.keys() - own.keys()
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"parameter {param.shape} vs state {value.shape}"
                )
            param.data = value.copy()
