"""Optimisers (SGD with momentum, Adam) and learning-rate schedules.

The co-search uses two optimisers side by side — one over DNN weights, one
over the fused architecture/implementation variables — exactly as in the
paper's bilevel procedure (Sec. 5).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def clip_grad_norm(params: Sequence[Tensor], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.  Standard stabiliser for the bilevel loop —
    early architecture steps can see large gradients from the exponential
    resource barrier.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad * p.grad).sum())
    norm = total**0.5
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            if p.grad is not None:
                # In place: gradient buffers may be pool-owned (see
                # repro.autograd.pool); rebinding would orphan them.
                p.grad *= scale
    return norm


class Optimizer:
    """Base optimiser over an explicit parameter list."""

    def __init__(self, params: Sequence[Tensor], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum and weight decay.

    Updates run fully in place (velocity, parameters, and a persistent
    per-parameter scratch buffer for the decay/LR products), so a steady-state
    step performs no heap allocation — same arithmetic order, and therefore
    bit-identical results, as the allocating formulation it replaces.
    """

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]
        self._scratch = [np.empty_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v, tmp in zip(self.params, self._velocity, self._scratch):
            if p.grad is None:
                continue
            v *= self.momentum
            if self.weight_decay:
                np.multiply(p.data, self.weight_decay, out=tmp)
                tmp += p.grad
                v += tmp
            else:
                v += p.grad
            np.multiply(v, self.lr, out=tmp)
            p.data -= tmp


class Adam(Optimizer):
    """Adam with bias correction; the paper-style choice for architecture vars.

    Moments and parameters update in place through two persistent scratch
    buffers per parameter — no per-step allocation, with the exact operation
    order (and hence bit-identical results) of the allocating formulation:
    ``p -= (lr * m_hat) / (sqrt(v_hat) + eps)``.
    """

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._scratch = [
            (np.empty_like(p.data), np.empty_like(p.data)) for p in self.params
        ]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v, (t1, t2) in zip(self.params, self._m, self._v, self._scratch):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                np.multiply(p.data, self.weight_decay, out=t1)
                t1 += grad
                grad = t1
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=t2)
            m += t2
            v *= self.beta2
            # ((1-b2) * grad) * grad — the historical association, preserved
            # so results match the allocating formulation bit for bit.
            np.multiply(grad, 1.0 - self.beta2, out=t2)
            t2 *= grad
            v += t2
            # t1 <- lr * m_hat, t2 <- sqrt(v_hat) + eps, update = t1 / t2.
            np.divide(m, bias1, out=t1)
            t1 *= self.lr
            np.divide(v, bias2, out=t2)
            np.sqrt(t2, out=t2)
            t2 += self.eps
            t1 /= t2
            p.data -= t1


class CosineSchedule:
    """Cosine-annealed learning rate from ``lr`` down to ``lr_min``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, lr_min: float = 0.0) -> None:
        if total_steps <= 0:
            raise ValueError(f"total_steps must be positive, got {total_steps}")
        self.optimizer = optimizer
        self.total_steps = total_steps
        self.lr_max = optimizer.lr
        self.lr_min = lr_min
        self._step = 0

    def step(self) -> float:
        self._step = min(self._step + 1, self.total_steps)
        progress = self._step / self.total_steps
        lr = self.lr_min + 0.5 * (self.lr_max - self.lr_min) * (
            1.0 + math.cos(math.pi * progress)
        )
        self.optimizer.lr = lr
        return lr


class StepSchedule:
    """Multiply the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._step = 0

    def step(self) -> float:
        self._step += 1
        if self._step % self.step_size == 0:
            self.optimizer.lr *= self.gamma
        return self.optimizer.lr
