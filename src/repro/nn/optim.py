"""Optimisers (SGD with momentum, Adam) and learning-rate schedules.

The co-search uses two optimisers side by side — one over DNN weights, one
over the fused architecture/implementation variables — exactly as in the
paper's bilevel procedure (Sec. 5).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def clip_grad_norm(params: Sequence[Tensor], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.  Standard stabiliser for the bilevel loop —
    early architecture steps can see large gradients from the exponential
    resource barrier.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad * p.grad).sum())
    norm = total**0.5
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            if p.grad is not None:
                p.grad = p.grad * scale
    return norm


class Optimizer:
    """Base optimiser over an explicit parameter list."""

    def __init__(self, params: Sequence[Tensor], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum and weight decay."""

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            v *= self.momentum
            v += grad
            p.data = p.data - self.lr * v


class Adam(Optimizer):
    """Adam with bias correction; the paper-style choice for architecture vars."""

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class CosineSchedule:
    """Cosine-annealed learning rate from ``lr`` down to ``lr_min``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, lr_min: float = 0.0) -> None:
        if total_steps <= 0:
            raise ValueError(f"total_steps must be positive, got {total_steps}")
        self.optimizer = optimizer
        self.total_steps = total_steps
        self.lr_max = optimizer.lr
        self.lr_min = lr_min
        self._step = 0

    def step(self) -> float:
        self._step = min(self._step + 1, self.total_steps)
        progress = self._step / self.total_steps
        lr = self.lr_min + 0.5 * (self.lr_max - self.lr_min) * (
            1.0 + math.cos(math.pi * progress)
        )
        self.optimizer.lr = lr
        return lr


class StepSchedule:
    """Multiply the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._step = 0

    def step(self) -> float:
        self._step += 1
        if self._step % self.step_size == 0:
            self.optimizer.lr *= self.gamma
        return self.optimizer.lr
