"""Losses and classification metrics."""

from __future__ import annotations

import numpy as np

from repro.autograd import ops_nn
from repro.autograd.tensor import Tensor, make_op


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of integer ``targets``.

    ``log_probs`` is (N, C); ``targets`` is an int array of shape (N,).
    Implemented as a primitive so the backward is a cheap scatter.
    """
    targets = np.asarray(targets)
    n = log_probs.shape[0]
    picked = log_probs.data[np.arange(n), targets]
    out = np.asarray(-picked.mean())

    def backward(grad: np.ndarray):
        full = np.zeros_like(log_probs.data)
        full[np.arange(n), targets] = -1.0 / n
        return (full * grad,)

    return make_op(out, (log_probs,), backward, "nll_loss")


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Softmax cross-entropy from raw logits (numerically stable)."""
    return nll_loss(ops_nn.log_softmax(logits, axis=-1), targets)


def accuracy(logits: Tensor | np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy in [0, 1]."""
    return topk_accuracy(logits, targets, k=1)


def topk_accuracy(logits: Tensor | np.ndarray, targets: np.ndarray, k: int) -> float:
    """Fraction of rows whose true class is within the top-k logits."""
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    targets = np.asarray(targets)
    if data.ndim != 2:
        raise ValueError(f"expected (N, C) logits, got {data.shape}")
    k = min(k, data.shape[1])
    topk = np.argpartition(-data, k - 1, axis=1)[:, :k]
    hits = (topk == targets[:, None]).any(axis=1)
    return float(hits.mean())
