"""Concrete layers: convolutions, batch-norm, pooling, activations, linear.

BatchNorm follows the standard formulation with per-batch statistics during
training and exponential running statistics for evaluation; its normalisation
is expressed with autograd primitives so gradients flow to gamma/beta and the
input without a bespoke backward.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import ops_nn
from repro.autograd.tensor import Tensor
from repro.nn.init import kaiming_normal, xavier_uniform
from repro.nn.module import Module, Parameter
from repro.utils.rng import new_rng


class Conv2d(Module):
    """Standard/grouped 2-D convolution (no bias — BN provides the shift)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int | None = None,
        groups: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if padding is None:
            padding = kernel_size // 2  # "same" padding for odd kernels
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        rng = rng or new_rng()
        shape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(kaiming_normal(shape, rng))

    def forward(self, x: Tensor) -> Tensor:
        return ops_nn.conv2d(
            x, self.weight, stride=self.stride, padding=self.padding, groups=self.groups
        )


class DepthwiseConv2d(Conv2d):
    """Depthwise convolution: one filter per channel (groups == channels)."""

    def __init__(
        self,
        channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(
            channels,
            channels,
            kernel_size,
            stride=stride,
            padding=padding,
            groups=channels,
            rng=rng,
        )


class Linear(Module):
    """Affine layer ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        rng = rng or new_rng()
        self.weight = Parameter(xavier_uniform((out_features, in_features), rng))
        if bias:
            self.bias: Parameter | None = Parameter(np.zeros(out_features))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return ops_nn.linear(x, self.weight, self.bias)


class BatchNorm2d(Module):
    """Batch normalisation over (N, H, W) per channel."""

    def __init__(self, channels: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.channels = channels
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(channels))
        self.beta = Parameter(np.zeros(channels))
        self.register_buffer(
            "running_mean", np.zeros(channels, dtype=self.gamma.data.dtype)
        )
        self.register_buffer(
            "running_var", np.ones(channels, dtype=self.gamma.data.dtype)
        )

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects NCHW input, got {x.shape}")
        if self.training:
            out, batch_mean, batch_var = ops_nn.batch_norm2d(
                x, self.gamma, self.beta, eps=self.eps
            )
            self.running_mean = (
                (1.0 - self.momentum) * self.running_mean + self.momentum * batch_mean
            )
            self.running_var = (
                (1.0 - self.momentum) * self.running_var + self.momentum * batch_var
            )
            return out
        mean = self.running_mean.reshape(1, -1, 1, 1)
        inv_std = 1.0 / np.sqrt(self.running_var.reshape(1, -1, 1, 1) + self.eps)
        normalised = (x - Tensor(mean)) * Tensor(inv_std)
        gamma = self.gamma.reshape(1, self.channels, 1, 1)
        beta = self.beta.reshape(1, self.channels, 1, 1)
        return normalised * gamma + beta


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops_nn.relu(x)


class ReLU6(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops_nn.relu6(x)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class AvgPool2d(Module):
    def __init__(self, kernel: int) -> None:
        super().__init__()
        self.kernel = kernel

    def forward(self, x: Tensor) -> Tensor:
        return ops_nn.avg_pool2d(x, self.kernel)


class MaxPool2d(Module):
    """Max pooling; supports overlapping windows (kernel > stride)."""

    def __init__(self, kernel: int, stride: int | None = None, padding: int = 0) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride or kernel
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return ops_nn.max_pool2d(x, self.kernel, stride=self.stride, padding=self.padding)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops_nn.global_avg_pool2d(x)
