"""Composite module containers."""

from __future__ import annotations

from collections.abc import Iterator

from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class Sequential(Module):
    """Applies child modules in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self._layers: list[Module] = []
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)
            self._layers.append(layer)

    def append(self, layer: Module) -> "Sequential":
        setattr(self, f"layer{len(self._layers)}", layer)
        self._layers.append(layer)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x


class ModuleList(Module):
    """Holds an indexable list of modules without chaining them in forward."""

    def __init__(self, modules: list[Module] | None = None) -> None:
        super().__init__()
        self._items: list[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        setattr(self, f"item{len(self._items)}", module)
        self._items.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def forward(self, *args, **kwargs) -> Tensor:
        raise RuntimeError("ModuleList is a container; index into it instead")
