"""Weight initialisers (numpy-level; used when constructing layer Parameters).

Draws come out of numpy's generators as ``float64``; every initialiser casts
to the tensor dtype policy (:func:`repro.autograd.tensor.get_default_dtype`)
so freshly built networks start — and stay — in the fast dtype.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import get_default_dtype


def kaiming_normal(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    fan_in: int | None = None,
) -> np.ndarray:
    """He initialisation for ReLU-family networks.

    ``fan_in`` defaults to everything except the leading (output) axis, which
    matches conv weights of shape (out, in/groups, kH, kW) and linear weights
    of shape (out, in).
    """
    if fan_in is None:
        fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else shape[0]
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def xavier_uniform(
    shape: tuple[int, ...],
    rng: np.random.Generator,
) -> np.ndarray:
    """Glorot-uniform initialisation (used for the classifier head)."""
    fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else shape[0]
    fan_out = shape[0]
    bound = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape).astype(get_default_dtype(), copy=False)
