"""Weight initialisers (numpy-level; used when constructing layer Parameters)."""

from __future__ import annotations

import numpy as np


def kaiming_normal(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    fan_in: int | None = None,
) -> np.ndarray:
    """He initialisation for ReLU-family networks.

    ``fan_in`` defaults to everything except the leading (output) axis, which
    matches conv weights of shape (out, in/groups, kH, kW) and linear weights
    of shape (out, in).
    """
    if fan_in is None:
        fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else shape[0]
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(
    shape: tuple[int, ...],
    rng: np.random.Generator,
) -> np.ndarray:
    """Glorot-uniform initialisation (used for the classifier head)."""
    fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else shape[0]
    fan_out = shape[0]
    bound = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape)
