"""Deterministic random-number management.

Every stochastic component in the library (data generation, Gumbel noise,
weight initialisation, search) receives an explicit ``numpy.random.Generator``
so that experiments are reproducible end to end.  The helpers here centralise
construction so seeds are never pulled from global state.
"""

from __future__ import annotations

import json

import numpy as np

DEFAULT_SEED = 0x5EED


def new_rng(seed: int | None = None) -> np.random.Generator:
    """Return a fresh, independent ``Generator``.

    ``None`` falls back to the library-wide :data:`DEFAULT_SEED` rather than
    entropy from the OS, keeping runs reproducible by default.
    """
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, count: int) -> list[np.random.Generator]:
    """Split one seed into ``count`` statistically independent generators.

    Uses ``SeedSequence.spawn`` so children do not overlap even for adjacent
    seeds.  Useful when a component (e.g. the co-search) needs separate
    streams for data shuffling, Gumbel noise and weight init.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    sequence = np.random.SeedSequence(DEFAULT_SEED if seed is None else seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def capture_rng_state(generator: np.random.Generator) -> np.ndarray:
    """Snapshot a ``Generator``'s exact position as a ``uint8`` array.

    The bit-generator state dict (which contains arbitrary-precision integers
    for PCG64) is JSON-encoded into bytes, so the result can live inside an
    ``.npz`` checkpoint next to the weight arrays.  Restore the stream with
    :func:`restore_rng_state`; draws after a round-trip are bit-identical to
    draws from the original generator.

    Args:
        generator: Any ``numpy.random.Generator``.

    Returns:
        1-D ``uint8`` array holding the JSON-encoded bit-generator state.
    """
    payload = json.dumps(generator.bit_generator.state).encode("utf-8")
    return np.frombuffer(payload, dtype=np.uint8).copy()


def restore_rng_state(
    generator: np.random.Generator, state: np.ndarray
) -> np.random.Generator:
    """Rewind ``generator`` to a state captured by :func:`capture_rng_state`.

    Args:
        generator: The generator to mutate in place.  Its bit-generator type
            must match the one that produced ``state``.
        state: ``uint8`` array from :func:`capture_rng_state`.

    Returns:
        The same ``generator``, for chaining.

    Raises:
        ValueError: If ``state`` does not decode to a state dict for this
            generator's bit-generator type.
    """
    decoded = json.loads(np.asarray(state, dtype=np.uint8).tobytes().decode("utf-8"))
    expected = generator.bit_generator.state.get("bit_generator")
    if decoded.get("bit_generator") != expected:
        raise ValueError(
            f"RNG state is for {decoded.get('bit_generator')!r}, "
            f"generator uses {expected!r}"
        )
    generator.bit_generator.state = decoded
    return generator


class RngMixin:
    """Mixin giving a class a lazily created private generator.

    Subclasses set ``self._seed`` (int or None) in ``__init__``; the mixin
    materialises ``self.rng`` on first use.
    """

    _seed: int | None = None
    _rng: np.random.Generator | None = None

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = new_rng(self._seed)
        return self._rng

    def reseed(self, seed: int | None) -> None:
        """Reset the stream; the next draw starts from ``seed``."""
        self._seed = seed
        self._rng = None
