"""Shared utilities: seeded RNG management, logging, serialisation, numerics."""

from repro.utils.log import get_logger
from repro.utils.numeric import (
    log_sum_exp,
    one_hot,
    sigmoid,
    softmax,
    stable_log,
)
from repro.utils.rng import RngMixin, new_rng, spawn_rngs
from repro.utils.serialization import from_json_file, to_json_file

__all__ = [
    "RngMixin",
    "from_json_file",
    "get_logger",
    "log_sum_exp",
    "new_rng",
    "one_hot",
    "sigmoid",
    "softmax",
    "spawn_rngs",
    "stable_log",
    "to_json_file",
]
