"""Numerically stable scalar/array helpers used across the library.

These operate on plain numpy arrays.  The autograd package re-implements the
differentiable counterparts; keeping the raw versions here avoids circular
imports and lets the hardware models be used standalone.
"""

from __future__ import annotations

import numpy as np


def stable_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Max-shifted softmax in the array's *own* dtype (no float64 coercion).

    The one shared implementation of the softmax-over-logits pattern:
    :meth:`repro.nas.supernet.SuperNet.theta_probabilities` /
    ``phi_probabilities`` and :func:`repro.nas.gumbel.entropy_of_logits` all
    reduce to this.  Unlike :func:`softmax` it preserves the input dtype, so
    float32 logits produce float32 probabilities.
    """
    x = np.asarray(x)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable softmax along ``axis`` (shifts by the max before exponentiating)."""
    return stable_softmax(np.asarray(x, dtype=np.float64), axis=axis)


def log_sum_exp(x: np.ndarray, axis: int | None = None) -> np.ndarray:
    """Stable ``log(sum(exp(x)))`` — the smooth maximum of Eq. 7 in the paper.

    Satisfies ``max(x) <= log_sum_exp(x) <= max(x) + log(n)``.
    """
    x = np.asarray(x, dtype=np.float64)
    m = np.max(x, axis=axis, keepdims=True)
    out = m + np.log(np.sum(np.exp(x - m), axis=axis, keepdims=True))
    if axis is None:
        return out.reshape(())
    return np.squeeze(out, axis=axis)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Stable logistic function (branches on sign to avoid overflow)."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def stable_log(x: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """``log(max(x, eps))`` — guards losses against exact zeros."""
    return np.log(np.maximum(np.asarray(x, dtype=np.float64), eps))


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Row-wise one-hot encoding of an integer array.

    Output shape is ``indices.shape + (num_classes,)`` with dtype float64.
    """
    indices = np.asarray(indices)
    if num_classes <= 0:
        raise ValueError(f"num_classes must be positive, got {num_classes}")
    if indices.size and (indices.min() < 0 or indices.max() >= num_classes):
        raise ValueError(
            f"indices out of range [0, {num_classes}): "
            f"min={indices.min()}, max={indices.max()}"
        )
    out = np.zeros(indices.shape + (num_classes,), dtype=np.float64)
    np.put_along_axis(
        out.reshape(-1, num_classes),
        indices.reshape(-1, 1),
        1.0,
        axis=1,
    )
    return out
