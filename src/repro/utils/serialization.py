"""JSON persistence for search results, architecture specs and configs.

Numpy scalars/arrays are converted to native Python types so the files stay
portable and diff-friendly.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

import numpy as np


class ReproJSONEncoder(json.JSONEncoder):
    """Encoder aware of numpy types and dataclasses."""

    def default(self, o: Any) -> Any:
        if isinstance(o, np.integer):
            return int(o)
        if isinstance(o, np.floating):
            return float(o)
        if isinstance(o, np.bool_):
            return bool(o)
        if isinstance(o, np.ndarray):
            return o.tolist()
        if dataclasses.is_dataclass(o) and not isinstance(o, type):
            return dataclasses.asdict(o)
        return super().default(o)


def to_json_file(obj: Any, path: str | Path, indent: int = 2) -> Path:
    """Serialise ``obj`` to ``path``; returns the resolved path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        json.dump(obj, fh, cls=ReproJSONEncoder, indent=indent)
        fh.write("\n")
    return path


def from_json_file(path: str | Path) -> Any:
    """Load a JSON document written by :func:`to_json_file`."""
    with Path(path).open() as fh:
        return json.load(fh)
