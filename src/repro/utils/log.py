"""Thin logging facade.

The library logs through standard :mod:`logging` under the ``repro`` root so
applications can silence or redirect it with one handler.  ``get_logger``
installs a single stderr handler on first use and never touches the root
logger configuration of the host application.

The root level defaults to ``INFO`` and is configurable two ways: the
``REPRO_LOG_LEVEL`` environment variable (read once, at first configure) and
:func:`set_level` (what the global ``repro --log-level`` CLI flag calls).
"""

from __future__ import annotations

import logging
import os

_ROOT_NAME = "repro"
_configured = False

#: Accepted level names (case-insensitive) for ``REPRO_LOG_LEVEL``,
#: :func:`set_level` and the ``--log-level`` CLI flag.
LOG_LEVELS = ("debug", "info", "warning", "error", "critical")


def _parse_level(level: str | int) -> int:
    """Level name/number -> :mod:`logging` numeric level.

    Raises:
        ValueError: For a name outside :data:`LOG_LEVELS`.
    """
    if isinstance(level, int):
        return level
    name = level.strip().lower()
    if name not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {'/'.join(LOG_LEVELS)}"
        )
    return getattr(logging, name.upper())


def _env_level() -> int:
    """Level from ``REPRO_LOG_LEVEL``; INFO when unset or unparsable.

    A bad value must not crash library import, so it falls back silently —
    the CLI flag, which can afford to be strict, validates via argparse
    choices instead.
    """
    raw = os.environ.get("REPRO_LOG_LEVEL", "")
    if not raw.strip():
        return logging.INFO
    try:
        return _parse_level(raw)
    except ValueError:
        return logging.INFO


def _configure_root() -> None:
    global _configured
    if _configured:
        return
    root = logging.getLogger(_ROOT_NAME)
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        root.addHandler(handler)
    root.setLevel(_env_level())
    root.propagate = False
    _configured = True


def set_level(level: str | int) -> int:
    """Set the ``repro`` root logger level; returns the numeric level set.

    Accepts a :data:`LOG_LEVELS` name (case-insensitive) or a numeric level.
    Overrides whatever ``REPRO_LOG_LEVEL`` configured.
    """
    parsed = _parse_level(level)
    _configure_root()
    logging.getLogger(_ROOT_NAME).setLevel(parsed)
    return parsed


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under ``repro``.

    ``get_logger("core.cosearch")`` yields ``repro.core.cosearch``.
    """
    _configure_root()
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")
