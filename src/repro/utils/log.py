"""Thin logging facade.

The library logs through standard :mod:`logging` under the ``repro`` root so
applications can silence or redirect it with one handler.  ``get_logger``
installs a single stderr handler on first use and never touches the root
logger configuration of the host application.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"
_configured = False


def _configure_root() -> None:
    global _configured
    if _configured:
        return
    root = logging.getLogger(_ROOT_NAME)
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        root.addHandler(handler)
    root.setLevel(logging.INFO)
    root.propagate = False
    _configured = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under ``repro``.

    ``get_logger("core.cosearch")`` yields ``repro.core.cosearch``.
    """
    _configure_root()
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")
