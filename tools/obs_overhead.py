#!/usr/bin/env python
"""CI guard: a *disabled* tracer must not slow down ``Engine.run``.

``Engine.run`` is instrumented (one ``get_tracer()`` fetch and an
``enabled`` check per call; a span only when enabled).  This script times
the instrumented path with tracing disabled against an inlined replica of
the same hot loop with the tracer lines deleted — everything else
(validation, arena views, stats bookkeeping) identical — and fails when the
instrumented path drops below ``--threshold`` of the untraced throughput
(default 0.95, i.e. more than 5% overhead).

The two variants are timed interleaved, one call each per round, so clock
drift and cache effects hit both equally; the verdict compares medians.

Run directly::

    PYTHONPATH=src python tools/obs_overhead.py --runs 300
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time

import numpy as np


def _untraced_run(engine, x: np.ndarray) -> np.ndarray:
    """``Engine.run`` body with the tracer lines removed (baseline)."""
    from repro.runtime.engine import _OP_TABLE

    x = np.asarray(x, dtype=engine.plan.dtype)
    single = x.ndim == len(engine.plan.input_shape)
    if single:
        x = x[None]
    if x.shape[1:] != engine.plan.input_shape:
        raise ValueError("input shape mismatch")
    start = time.perf_counter()
    views = engine._views_for(x.shape[0])
    np.copyto(views[engine.plan.input_buffer], x)
    for op in engine.plan.ops:
        _OP_TABLE[op.kind](op, views)
    out = views[engine.plan.output_buffer].copy()
    engine.last_ms = (time.perf_counter() - start) * 1e3
    engine.total_ms += engine.last_ms
    engine.run_count += 1
    return out[0] if single else out


def main(argv: list[str] | None = None) -> int:
    """Time both variants; exit non-zero when the guard fails."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="EDD-Net-1")
    parser.add_argument("--width", type=float, default=0.1)
    parser.add_argument("--input-size", type=int, default=16)
    parser.add_argument("--batch", type=int, default=4)
    parser.add_argument("--runs", type=int, default=300,
                        help="interleaved timing rounds per variant")
    parser.add_argument("--threshold", type=float, default=0.95,
                        help="minimum untraced/instrumented median ratio")
    args = parser.parse_args(argv)

    from repro import api
    from repro.obs.tracer import get_tracer

    tracer = get_tracer()
    if tracer.enabled:
        print("global tracer is enabled; this guard measures the disabled "
              "path", file=sys.stderr)
        return 2

    engine = api.compile_model(args.model, width_mult=args.width,
                               input_size=args.input_size)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(args.batch,) + engine.plan.input_shape)
    ref = engine.run(x)  # warm the arena and the kernels
    np.testing.assert_allclose(_untraced_run(engine, x), ref)

    instrumented: list[float] = []
    untraced: list[float] = []
    for _ in range(args.runs):
        start = time.perf_counter()
        engine.run(x)
        instrumented.append(time.perf_counter() - start)
        start = time.perf_counter()
        _untraced_run(engine, x)
        untraced.append(time.perf_counter() - start)

    med_instr = statistics.median(instrumented)
    med_plain = statistics.median(untraced)
    ratio = med_plain / med_instr if med_instr > 0 else 1.0
    print(f"instrumented (tracer disabled): {med_instr * 1e3:.4f} ms median")
    print(f"untraced baseline:              {med_plain * 1e3:.4f} ms median")
    print(f"untraced/instrumented ratio:    {ratio:.3f} "
          f"(threshold {args.threshold})")
    if ratio < args.threshold:
        print(f"overhead guard FAILED: disabled tracer costs more than "
              f"{(1 - args.threshold) * 100:.0f}%", file=sys.stderr)
        return 1
    print("overhead guard OK: disabled tracer is free")
    return 0


if __name__ == "__main__":
    sys.exit(main())
