#!/usr/bin/env python
"""Compare a fresh BENCH_*.json against the committed baseline (run in CI).

Walks both reports for numeric leaves whose key marks them as a timing
(``*_ms`` / ``*_seconds``) and computes the geometric-mean ratio
fresh/baseline over the keys present in both.  Exits 1 when the fresh run
is more than the allowed regression slower overall (default 10%).

Speedup *ratios* (``speedup``, ``*_speedup``) are intentionally not
compared — they are already relative measurements and double-counting
them would let a uniformly slower machine mask a real regression (or
vice versa).  Parity booleans are enforced where present: a fresh report
with ``parity_ok: false`` fails regardless of timings.

Run directly::

    PYTHONPATH=src python tools/bench_compare.py BENCH_search.json fresh.json
    PYTHONPATH=src python tools/bench_compare.py --max-regression 0.25 \\
        BENCH_numerics.json fresh_numerics.json

Absolute machine speed differs between the commit box and CI runners, so
cross-machine comparisons are only meaningful with a generous threshold;
the default is tuned for same-machine before/after runs.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

TIMING_SUFFIXES = ("_ms", "_seconds")


def timing_leaves(node: object, prefix: str = "") -> dict[str, float]:
    """Flatten ``node`` to ``{dotted.path: value}`` for timing-valued keys."""
    leaves: dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if (
                isinstance(value, (int, float))
                and not isinstance(value, bool)
                and str(key).endswith(TIMING_SUFFIXES)
                and value > 0
            ):
                leaves[path] = float(value)
            else:
                leaves.update(timing_leaves(value, path))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            # Case lists carry a 'name' field; key rows by it so reordered
            # or added cases pair up by identity, not by index.
            label = value.get("name", i) if isinstance(value, dict) else i
            leaves.update(timing_leaves(value, f"{prefix}[{label}]"))
    return leaves


def parity_flags(node: object, prefix: str = "") -> dict[str, bool]:
    """Flatten ``node`` to ``{dotted.path: value}`` for parity booleans."""
    flags: dict[str, bool] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, bool) and (
                str(key).endswith("parity_ok") or str(key).endswith("_parity")
            ):
                flags[path] = value
            else:
                flags.update(parity_flags(value, path))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            flags.update(parity_flags(value, f"{prefix}[{i}]"))
    return flags


def compare(
    baseline: dict, fresh: dict, max_regression: float
) -> tuple[bool, str]:
    """Compare two bench reports; returns ``(ok, human_summary)``."""
    base_times = timing_leaves(baseline)
    fresh_times = timing_leaves(fresh)
    shared = sorted(set(base_times) & set(fresh_times))
    lines = []
    ok = True

    for path, flag in sorted(parity_flags(fresh).items()):
        if not flag:
            ok = False
            lines.append(f"PARITY FAIL: {path} is false in the fresh report")

    if not shared:
        return False, "no shared timing keys between baseline and fresh report"

    ratios = {p: fresh_times[p] / base_times[p] for p in shared}
    geomean = math.exp(sum(math.log(r) for r in ratios.values()) / len(ratios))
    worst = max(ratios, key=ratios.get)
    lines.append(
        f"{len(shared)} shared timings; geomean fresh/baseline = {geomean:.3f} "
        f"(allowed <= {1 + max_regression:.2f})"
    )
    lines.append(f"worst key: {worst} at {ratios[worst]:.3f}x baseline")
    if geomean > 1.0 + max_regression:
        ok = False
        lines.append(
            f"REGRESSION: fresh run is {geomean:.3f}x the committed baseline "
            f"(> {1 + max_regression:.2f}x allowed)"
        )
    return ok, "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed BENCH_*.json")
    parser.add_argument("fresh", type=Path, help="freshly generated report")
    parser.add_argument(
        "--max-regression", type=float, default=0.10,
        help="allowed geomean slowdown, fractional (default 0.10 = 10%%)",
    )
    args = parser.parse_args(argv)
    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())
    ok, summary = compare(baseline, fresh, args.max_regression)
    print(summary)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
