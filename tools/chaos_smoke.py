#!/usr/bin/env python
"""CI chaos smoke: kill -9 a checkpointed search, resume bit-identically.

Replays the crash-safety claims of ``docs/resilience.md`` end to end, with
real processes and real signals:

* **Phase A (kill -9)** — a child process runs a checkpointed search and is
  SIGKILLed mid-run, right after its second checkpoint lands.  The parent
  then litters the checkpoint directory with a truncated higher-epoch
  corpse and a stale atomic-write temp file (what a harsher crash could
  leave), resumes, and asserts the resumed run's ``theta``/``phi``/history
  are **bit-identical** to an uninterrupted reference run.
* **Phase B (preemption)** — a child runs ``repro search`` through the real
  CLI and receives SIGTERM after its first checkpoint; it must exit with
  ``PREEMPTION_EXIT_CODE`` (75, ``EX_TEMPFAIL``), not a traceback, and
  leave a resumable directory behind.
* **Phase C (fault-injected evaluator)** — a parallel evaluation with
  scripted worker crashes, hangs-free flaky errors and retries must return
  values (and therefore rankings) identical to the fault-free serial run.

Must run as a real file (not ``python - <<heredoc``): process pools and
the child re-invocation both need an importable ``__main__``.

Run::

    PYTHONPATH=src python tools/chaos_smoke.py
"""

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

# The shared search configuration: big enough that the kill lands mid-run,
# small enough to stay CI-cheap.
REQUEST = dict(target="gpu", epochs=10, blocks=2, batch_size=8, seed=0)


def _child_search(ckdir: str) -> None:
    """Child body for phase A: a checkpointed search, killed externally."""
    from repro import api

    api.search(api.SearchRequest(checkpoint_dir=ckdir, **REQUEST))


def _spawn(mode: str, ckdir: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    return subprocess.Popen(
        [sys.executable, os.path.abspath(__file__), mode, ckdir],
        env=env, cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )


def _wait_for_checkpoint(ckdir: Path, epoch: int, proc: subprocess.Popen,
                         timeout: float = 120.0) -> None:
    """Block until ``ckpt-epoch-{epoch:04d}.npz`` exists in ``ckdir``."""
    target = ckdir / f"ckpt-epoch-{epoch:04d}.npz"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if target.exists():
            return
        if proc.poll() is not None:
            raise AssertionError(
                f"child exited (rc={proc.returncode}) before {target.name} "
                f"appeared:\n{proc.stderr.read()}"
            )
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {target}")


def phase_a_kill9_resume() -> None:
    """SIGKILL mid-search; resume past planted corpses; assert bit-equality."""
    from repro import api

    reference = api.search(api.SearchRequest(**REQUEST))
    with tempfile.TemporaryDirectory(prefix="chaos-a-") as tmp:
        ckdir = Path(tmp) / "ck"
        proc = _spawn("child-search", str(ckdir))
        try:
            _wait_for_checkpoint(ckdir, 2, proc)
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)
        assert proc.returncode == -signal.SIGKILL, proc.returncode
        # Harsher-crash debris: a truncated higher-epoch corpse that must
        # not shadow the good state, and a stale atomic-write temp file.
        survivors = sorted(ckdir.glob("ckpt-epoch-*.npz"))
        assert survivors, "no checkpoint survived the kill"
        corpse = ckdir / "ckpt-epoch-0099.npz"
        corpse.write_bytes(survivors[-1].read_bytes()[:64])
        (ckdir / ".ckpt-epoch-0098.npz.tmp-12345").write_bytes(b"partial")

        resumed = api.search(
            api.SearchRequest(checkpoint_dir=str(ckdir), resume=True, **REQUEST)
        )
        assert resumed.resumed_from is not None
        assert "0099" not in resumed.resumed_from, resumed.resumed_from
        np.testing.assert_array_equal(
            resumed.result.theta, reference.result.theta
        )
        np.testing.assert_array_equal(resumed.result.phi, reference.result.phi)
        np.testing.assert_equal(  # NaN-aware exact history equality
            [r.to_dict() for r in resumed.result.history],
            [r.to_dict() for r in reference.result.history],
        )
    print("phase A ok: kill -9 resumed bit-identically past planted corpses")


def phase_b_sigterm_exit_code() -> None:
    """SIGTERM the real CLI: clean exit 75, resumable checkpoint behind."""
    from repro.resilience import PREEMPTION_EXIT_CODE

    with tempfile.TemporaryDirectory(prefix="chaos-b-") as tmp:
        ckdir = Path(tmp) / "ck"
        proc = _spawn("child-cli", str(ckdir))
        try:
            _wait_for_checkpoint(ckdir, 1, proc)
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == PREEMPTION_EXIT_CODE, (
            proc.returncode, out, err,
        )
        assert "Traceback" not in err, err
        assert "preempted by SIGTERM" in err, err
        from repro.core.checkpoint import find_latest_checkpoint

        assert find_latest_checkpoint(ckdir) is not None
    print(f"phase B ok: SIGTERM exited {PREEMPTION_EXIT_CODE} with a "
          "resumable checkpoint")


def _score(payload: int) -> float:
    """Deterministic per-seed candidate score for phase C."""
    rng = np.random.default_rng(payload)
    return float(rng.normal())


def phase_c_faulted_rankings() -> None:
    """Crashy/flaky parallel evaluation ranks identically to fault-free."""
    from repro.core.parallel import ParallelEvaluator
    from repro.resilience import RetryPolicy
    from repro.resilience.testing import CRASH, ERROR, OK, FaultyTask

    task = FaultyTask(_score)
    n = 8
    scripts = [()] * n
    scripts[1] = (ERROR, OK)
    scripts[3] = (CRASH, OK)
    scripts[5] = (ERROR, ERROR, OK)
    with tempfile.TemporaryDirectory(prefix="chaos-c-") as ledger:
        payloads = [
            task.payload(i, ledger, i, faults=scripts[i]) for i in range(n)
        ]
        evaluator = ParallelEvaluator(
            workers=3,
            retry=RetryPolicy(max_retries=2, base_delay_s=0.0, max_delay_s=0.0),
        )
        faulted = evaluator.map(task, payloads)
    clean = [_score(i) for i in range(n)]
    assert faulted == clean, (faulted, clean)
    assert list(np.argsort(faulted)) == list(np.argsort(clean))
    print("phase C ok: crash/flaky evaluator ranked identically to fault-free")


def main() -> None:
    phase_a_kill9_resume()
    phase_b_sigterm_exit_code()
    phase_c_faulted_rankings()
    print("chaos smoke passed")


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "child-search":
        _child_search(sys.argv[2])
    elif len(sys.argv) == 3 and sys.argv[1] == "child-cli":
        from repro.cli import main as cli_main

        sys.exit(cli_main([
            "search", "--target", "gpu", "--epochs", "30", "--blocks", "2",
            "--checkpoint-dir", sys.argv[2],
        ]))
    else:
        main()
