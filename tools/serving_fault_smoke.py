#!/usr/bin/env python
"""CI fault-injection smoke: kill one process worker, fleet keeps serving.

Stands up a 2-worker process fleet over two zoo models with a scripted
``CRASH`` on worker slot 0, then asserts the failure semantics from
``docs/serving.md``: the crashed batch fails fast with ``WorkerCrashed``
(no call ever hangs), the worker is respawned exactly once, both tenants
are served afterwards, and the metrics invariant holds at quiescence.

Must run as a real file (not ``python - <<heredoc``): the ``spawn`` start
method re-imports ``__main__`` in the child, which requires an importable
path — hence the ``__main__`` guard below.

Run::

    PYTHONPATH=src python tools/serving_fault_smoke.py
"""

import numpy as np


def main() -> None:
    """Drive the scripted-crash scenario end to end; raises on violation."""
    from repro import api
    from repro.runtime.fleet import ServingFleet, WorkerCrashed
    from repro.runtime.fleet.testing import CRASH

    plans = {
        name: api.compile_model(
            name, width_mult=0.1, input_size=16, num_classes=4, seed=0
        ).plan
        for name in ("EDD-Net-1", "MobileNet-V2")
    }
    x = np.random.default_rng(0).normal(size=(3, 16, 16))
    with ServingFleet(
        plans, workers=2, kind="process", fault_scripts={0: [CRASH]}
    ) as fleet:
        # Round-trip until the scripted crash fires; every call must
        # resolve (result or WorkerCrashed), none may hang.
        crashes = 0
        for _ in range(200):
            try:
                fleet.infer("EDD-Net-1", x, timeout=30.0)
            except WorkerCrashed:
                crashes += 1
                break
        assert crashes == 1, "scripted crash never fired"
        # The fleet keeps serving both tenants after the crash.
        for name in plans:
            out = fleet.infer(name, x, timeout=30.0)
            assert out.shape == (4,), (name, out.shape)
        stats = fleet.stats()
    workers = stats["workers"]
    assert sum(w["crashes"] for w in workers) == 1, workers
    assert sum(w["restarts"] for w in workers) == 1, workers
    fleet_counters = stats["fleet"]
    assert fleet_counters["accepted"] == (
        fleet_counters["completed"]
        + fleet_counters["failed"]
        + fleet_counters["shed"]
    ), fleet_counters
    assert fleet_counters["failed"] >= 1, fleet_counters
    print("fault smoke ok:", {
        key: fleet_counters[key]
        for key in ("accepted", "completed", "failed")
    })


if __name__ == "__main__":
    main()
