#!/usr/bin/env python
"""Docstring-coverage gate for the public surface (run in CI).

Imports ``repro`` and fails (exit 1) when any public name is missing a
docstring:

* every name in ``repro.api.__all__``, including public methods and
  properties of the classes among them;
* the :class:`~repro.core.engine.SearchEngine` / callback surface
  (``SearchEngine``, ``EngineRun``, ``EpochContext``, ``EpochRecord``,
  ``CheckpointCallback``, ``ParallelEvaluator``, ``MultiSearchResult``);
* the registry surface (``TargetSpec``, ``register_target``,
  ``register_device``, ``get_target``, ``get_device``, ``target_names``,
  ``device_names``, ``build_hardware_model``, ``quantization_for_target``);
* the compiled-runtime surface (everything in ``repro.runtime.__all__``:
  ``compile_spec``, ``ExecutionPlan``, ``plan_arena``, ``Engine``,
  ``InferenceServer``, ``BatchingQueue``, ...);
* the serving-fleet surface (everything in ``repro.runtime.fleet.__all__``:
  ``ServingFleet``, ``FleetScheduler``, ``ServingMetrics``, the traffic
  generators, ...).

Run directly::

    PYTHONPATH=src python tools/check_docstrings.py
"""

from __future__ import annotations

import inspect
import sys


def _has_doc(obj: object) -> bool:
    return bool((getattr(obj, "__doc__", None) or "").strip())


def _missing_in_class(cls: type, label: str) -> list[str]:
    """Public methods/properties of ``cls`` without docstrings.

    Only names defined on the class itself are checked (inherited members
    are the parent's responsibility); dataclass-generated dunders are out of
    scope by the leading-underscore rule.
    """
    missing = []
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        fn = member.fget if isinstance(member, property) else member
        if not callable(fn) and not isinstance(member, property):
            continue
        if not _has_doc(fn):
            missing.append(f"{label}.{name}")
    return missing


def collect_missing() -> list[str]:
    """Return the sorted list of public names lacking docstrings."""
    import repro.api as api
    from repro.core.checkpoint import CheckpointCallback, SearchCheckpoint
    from repro.core.engine import EngineRun, EpochContext, SearchEngine
    from repro.core.parallel import ParallelEvaluator
    from repro.core.results import EpochRecord, MultiSearchResult
    from repro.hw import registry

    missing: list[str] = []

    for name in api.__all__:
        obj = getattr(api, name)
        label = f"repro.api.{name}"
        if not _has_doc(obj):
            missing.append(label)
        if inspect.isclass(obj):
            missing.extend(_missing_in_class(obj, label))

    extra_classes = (
        SearchEngine, EngineRun, EpochContext, EpochRecord,
        CheckpointCallback, SearchCheckpoint, ParallelEvaluator,
        MultiSearchResult,
    )
    for cls in extra_classes:
        label = f"{cls.__module__}.{cls.__name__}"
        if not _has_doc(cls):
            missing.append(label)
        missing.extend(_missing_in_class(cls, label))

    registry_names = (
        "TargetSpec", "register_target", "register_device", "get_target",
        "get_device", "target_names", "device_names", "build_hardware_model",
        "quantization_for_target",
    )
    for name in registry_names:
        obj = getattr(registry, name)
        label = f"repro.hw.registry.{name}"
        if not _has_doc(obj):
            missing.append(label)
        if inspect.isclass(obj):
            missing.extend(_missing_in_class(obj, label))

    import repro.runtime as runtime

    for name in runtime.__all__:
        obj = getattr(runtime, name)
        label = f"repro.runtime.{name}"
        if not _has_doc(obj):
            missing.append(label)
        if inspect.isclass(obj):
            missing.extend(_missing_in_class(obj, label))

    import repro.runtime.fleet as fleet

    for name in fleet.__all__:
        obj = getattr(fleet, name)
        label = f"repro.runtime.fleet.{name}"
        if not _has_doc(obj):
            missing.append(label)
        if inspect.isclass(obj):
            missing.extend(_missing_in_class(obj, label))

    import repro.obs as obs

    for name in obs.__all__:
        obj = getattr(obs, name)
        label = f"repro.obs.{name}"
        if not _has_doc(obj):
            missing.append(label)
        if inspect.isclass(obj):
            missing.extend(_missing_in_class(obj, label))

    import repro.resilience as resilience

    for name in resilience.__all__:
        obj = getattr(resilience, name)
        label = f"repro.resilience.{name}"
        if not _has_doc(obj):
            missing.append(label)
        if inspect.isclass(obj):
            missing.extend(_missing_in_class(obj, label))

    # Training-hot-path surface: the autograd buffer pool, the serving-log
    # calibration refit, and the batched soft-mode evaluator.
    from repro.autograd import ops_nn
    from repro.autograd import pool as autograd_pool
    from repro.hw import calibration
    from repro.nas import batched, quantization
    from repro.resilience import testing as resilience_testing
    from repro.runtime.fleet import clock as fleet_clock
    from repro.runtime.fleet import testing as fleet_testing

    extra_names = (
        (fleet_clock, ("now", "set_time_source", "time_source")),
        (fleet_testing, ("FakeClock", "ScriptedEngine", "slow")),
        (resilience_testing, (
            "FaultInjected", "FaultyPayload", "FaultyTask", "attempts_made",
            "slow",
        )),
        (autograd_pool, ("BufferPool", "buffer_pool", "get_pool")),
        (calibration, (
            "CalibrationFit", "fit_calibration_scale", "fit_from_serving_log",
            "append_serving_record", "load_serving_log", "apply_fit",
            "records_from_profile", "fit_from_profile",
        )),
        (ops_nn, (
            "stack_conv_weights", "residual_add_shared", "mix_candidates",
            "project_candidates", "dw_direct_enabled",
        )),
        (quantization, ("mixed_quantize_stacked", "fake_quantize_sliced")),
        (batched, (
            "batched_soft_enabled", "batch_norm_stacked", "soft_block_mixture",
        )),
    )
    for module, names in extra_names:
        for name in names:
            obj = getattr(module, name)
            label = f"{module.__name__}.{name}"
            if not _has_doc(obj):
                missing.append(label)
            if inspect.isclass(obj):
                missing.extend(_missing_in_class(obj, label))

    return sorted(set(missing))


def main() -> int:
    """Print a coverage verdict; exit non-zero when names are missing docs."""
    missing = collect_missing()
    if missing:
        print(f"docstring gate FAILED: {len(missing)} public name(s) lack a __doc__:")
        for name in missing:
            print(f"  - {name}")
        return 1
    print("docstring gate OK: public surface fully documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
