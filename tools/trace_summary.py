#!/usr/bin/env python
"""Summarise a trace file: top ops by self-time, per-model queue waits.

Thin command-line wrapper over :func:`repro.obs.summarize_trace` — the same
code path as ``repro trace summary`` — kept as a standalone script so CI
jobs can inspect trace artifacts without installing the package entry
point.  Accepts both trace formats ``repro serve --trace-out`` writes:
Chrome trace-event JSON and one-event-per-line JSONL.

Run directly::

    PYTHONPATH=src python tools/trace_summary.py trace.json --top 10
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv: list[str] | None = None) -> int:
    """Print the summary; exit non-zero when the file holds no events."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", help="Chrome-trace .json or .jsonl file")
    parser.add_argument("--top", type=int, default=15,
                        help="rows in the by-self-time op table")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    args = parser.parse_args(argv)

    from repro.obs import load_trace, render_trace_summary, summarize_trace

    summary = summarize_trace(load_trace(args.file))
    if not summary["events"]:
        print(f"{args.file}: no trace events", file=sys.stderr)
        return 1
    if args.format == "json":
        print(json.dumps(summary, indent=2))
    else:
        print(render_trace_summary(summary, top=args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
