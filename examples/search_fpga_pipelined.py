#!/usr/bin/env python
"""EDD-Net-3 scenario: co-search for a *pipelined* FPGA accelerator.

The pipelined architecture (DNNBuilder-like, Sec. 4.1) gives every block its
own hardware stage, so:

* the objective is throughput — the slowest stage gates the pipeline; the
  search descends the Log-Sum-Exp smooth maximum (Eq. 7);
* resource is the plain sum over stages (Eq. 8) against the ZC706's 900
  DSPs;
* quantisation and parallel factors are free per block/op (full mixed
  precision).

The example also runs the fixed-implementation baseline on the same space
and compares the resulting bottleneck latencies — the paper's core ablation.

Usage:
    python examples/search_fpga_pipelined.py [--epochs 8] [--dsp-fraction 0.05]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.baselines import FixedImplementationNAS
from repro.core import EDDConfig, EDDSearcher, train_from_spec
from repro.data import SyntheticTaskConfig, make_synthetic_task
from repro.eval.figures import render_architecture
from repro.nas.space import SearchSpaceConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--blocks", type=int, default=4)
    parser.add_argument("--dsp-fraction", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=2)
    args = parser.parse_args()

    print("== EDD co-search: pipelined FPGA accelerator (EDD-Net-3 scenario) ==")
    space = SearchSpaceConfig.reduced(
        num_blocks=args.blocks, num_classes=6, input_size=12
    )
    splits = make_synthetic_task(
        SyntheticTaskConfig(num_classes=6, image_size=12, train_per_class=16,
                            val_per_class=8, test_per_class=8, seed=args.seed)
    )

    def config() -> EDDConfig:
        return EDDConfig(
            target="fpga_pipelined", epochs=args.epochs, batch_size=12,
            seed=args.seed, arch_start_epoch=1,
            resource_fraction=args.dsp_fraction, lse_sharpness=0.5, log_every=2,
        )

    searcher = EDDSearcher(space, splits, config())
    result = searcher.search(name="searched-pipelined")
    print(render_architecture(result.spec))
    print(f"per-block bits: {result.spec.metadata['block_bits']}")
    print(f"per-block parallel factors: {result.parallel_factors}")

    co_eval = searcher.hw_model.evaluate(searcher._expected_sample())
    print(f"\nco-search: expected bottleneck latency "
          f"{co_eval.diagnostics['max_block_latency_units']:.4f} units, "
          f"resource {co_eval.diagnostics['resource_dsp']:.1f} DSPs "
          f"(budget {searcher.hw_model.resource_bound:.0f})")

    print("\n-- fixed-implementation baseline (16-bit, frozen parallel factors) --")
    fixed = FixedImplementationNAS(space, splits, config(), fixed_bits=16)
    fixed_result = fixed.search(name="fixed-impl-pipelined")
    fixed_eval = fixed.hw_model.evaluate(fixed._expected_sample())
    print(f"fixed-impl: perf loss {float(fixed_eval.perf_loss.data):.3f} "
          f"(alpha-normalised; co-search {float(co_eval.perf_loss.data):.3f})")

    trained = train_from_spec(result.spec, splits, epochs=10, batch_size=12, lr=0.08)
    trained_fixed = train_from_spec(
        fixed_result.spec, splits, epochs=10, batch_size=12, lr=0.08
    )
    print(f"\nproxy accuracy: co-search {100 - trained.top1_error:.1f}% "
          f"vs fixed-impl {100 - trained_fixed.top1_error:.1f}% top-1")

    bits = np.array(result.spec.metadata["block_bits"])
    print(f"\nmixed precision in the co-searched pipeline: "
          f"{sorted(set(bits.tolist()))} bits across blocks "
          f"(the GPU target would force one global precision)")


if __name__ == "__main__":
    main()
