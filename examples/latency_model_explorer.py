#!/usr/bin/env python
"""Explore the analytic device models across the whole model zoo.

No search here — this is the measurement substrate of Tables 1-3 exposed as
a tool, driven through the ``repro.api`` batch estimator: one
:func:`repro.api.estimate` call evaluates every network (paper baselines +
EDD-Nets) on every registered hardware target, at any precision and width
multiplier.  Bit-widths outside a target's menu are clamped with an explicit
note, never silently.

Usage:
    python examples/latency_model_explorer.py                  # full sweep
    python examples/latency_model_explorer.py --model VGG16 --bits 8
    python examples/latency_model_explorer.py --width-mult 0.5
"""

from __future__ import annotations

import argparse

from repro import api
from repro.baselines.model_zoo import MODEL_ZOO, get_model
from repro.nas.arch_spec import ArchSpec, scale_spec


def _specs(names: list[str], width_mult: float) -> list[ArchSpec]:
    specs = [get_model(name) for name in names]
    if width_mult != 1.0:
        specs = [scale_spec(spec, width_mult=width_mult) for spec in specs]
    return specs


def sweep(names: list[str], bits: int, width_mult: float) -> None:
    specs = _specs(names, width_mult)
    # One batch call: every model x {gpu, fpga_recursive, fpga_pipelined};
    # a second sweeps the GPU target on the 1080 Ti for the Table 2 column.
    report = api.estimate(
        models=specs, targets=["gpu", "fpga_recursive", "fpga_pipelined"],
        bits=[bits],
    )
    ti = api.estimate(
        models=specs, targets=["gpu"], bits=[bits],
        devices={"gpu": "gtx-1080ti"},
    )
    by_key = {(r.model, r.target): r for r in report}
    ti_by_model = {r.model: r for r in ti}

    print(f"{'model':18s} {'MACs':>9s} {'params':>8s} "
          f"{'RTX ms':>8s} {'1080Ti ms':>10s} {'ZCU102 ms':>10s} {'ZC706 fps':>10s}")
    print("-" * 80)
    notes: dict[str, str] = {}
    for spec in specs:
        gpu = by_key[(spec.name, "gpu")]
        rec = by_key[(spec.name, "fpga_recursive")]
        pipe = by_key[(spec.name, "fpga_pipelined")]
        rec_cell = f"{rec.value:10.2f}" if rec.supported else f"{'NA':>10s}"
        print(f"{spec.name:18s} {spec.total_macs() / 1e9:8.2f}G "
              f"{spec.total_params() / 1e6:7.2f}M {gpu.value:8.2f} "
              f"{ti_by_model[spec.name].value:10.2f} "
              f"{rec_cell} {pipe.value:10.1f}")
        for r in (gpu, ti_by_model[spec.name], rec, pipe):
            if r.clamped and r.target not in notes:
                notes[r.target] = r.note.split(";")[0]
    for note in notes.values():
        print(f"note: {note}")


def detail(name: str, bits: int, width_mult: float) -> None:
    spec = _specs([name], width_mult)[0]
    print(spec.describe())
    print(f"\ntotal: {spec.total_macs() / 1e9:.2f} GMACs, "
          f"{spec.total_params() / 1e6:.2f} M params, {spec.num_layers()} layers")
    print()
    report = api.estimate(models=[spec], bits=[bits])
    ti = api.estimate(models=[spec], targets=["gpu"], bits=[bits],
                      devices={"gpu": "gtx-1080ti"})
    for r in (*report, *ti):
        metric = r.metric.split("_")[0]
        unit = "ms" if r.metric == "latency_ms" else "fps"
        cell = f"{r.value:8.2f} {unit}" if r.supported else f"NA ({r.note})"
        print(f"{r.target:16s} {metric:10s} ({r.device}, {r.bits}-bit): {cell}")
        if r.clamped:
            print(f"  note: {r.note.split(';')[0]}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", choices=sorted(MODEL_ZOO), default=None,
                        help="detail view for one network (default: sweep all)")
    parser.add_argument("--bits", type=int, default=32,
                        help="requested precision; clamped per target with a note")
    parser.add_argument("--width-mult", type=float, default=1.0)
    args = parser.parse_args()

    if args.model:
        detail(args.model, args.bits, args.width_mult)
    else:
        sweep(sorted(MODEL_ZOO), args.bits, args.width_mult)


if __name__ == "__main__":
    main()
