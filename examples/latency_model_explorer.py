#!/usr/bin/env python
"""Explore the analytic device models across the whole model zoo.

No search here — this is the measurement substrate of Tables 1-3 exposed as
a tool: estimate GPU latency, recursive-FPGA latency and pipelined-FPGA
throughput for every network (paper baselines + EDD-Nets), at any precision
and width multiplier.

Usage:
    python examples/latency_model_explorer.py                  # full sweep
    python examples/latency_model_explorer.py --model VGG16 --bits 8
    python examples/latency_model_explorer.py --width-mult 0.5
"""

from __future__ import annotations

import argparse

from repro.baselines.model_zoo import MODEL_ZOO, get_model
from repro.hw.analytic import (
    UnsupportedNetworkError,
    fpga_pipelined_report,
    fpga_recursive_latency_ms,
    gpu_latency_ms,
)
from repro.hw.device import GTX_1080TI, TITAN_RTX, ZC706, ZCU102
from repro.nas.arch_spec import scale_spec


def sweep(names: list[str], bits: int, width_mult: float) -> None:
    print(f"{'model':18s} {'MACs':>9s} {'params':>8s} "
          f"{'RTX ms':>8s} {'1080Ti ms':>10s} {'ZCU102 ms':>10s} {'ZC706 fps':>10s}")
    print("-" * 80)
    for name in names:
        spec = get_model(name)
        if width_mult != 1.0:
            spec = scale_spec(spec, width_mult=width_mult)
        gpu_rtx = gpu_latency_ms(spec, TITAN_RTX, bits)
        gpu_ti = gpu_latency_ms(spec, GTX_1080TI, bits)
        try:
            fpga_rec = f"{fpga_recursive_latency_ms(spec, ZCU102, min(bits, 16)):10.2f}"
        except UnsupportedNetworkError:
            fpga_rec = f"{'NA':>10s}"
        report = fpga_pipelined_report(spec, ZC706, min(bits, 16))
        print(f"{spec.name:18s} {spec.total_macs() / 1e9:8.2f}G "
              f"{spec.total_params() / 1e6:7.2f}M {gpu_rtx:8.2f} {gpu_ti:10.2f} "
              f"{fpga_rec} {report.fps:10.1f}")


def detail(name: str, bits: int, width_mult: float) -> None:
    spec = get_model(name)
    if width_mult != 1.0:
        spec = scale_spec(spec, width_mult=width_mult)
    print(spec.describe())
    print(f"\ntotal: {spec.total_macs() / 1e9:.2f} GMACs, "
          f"{spec.total_params() / 1e6:.2f} M params, {spec.num_layers()} layers")
    print(f"\nGPU latency  (Titan RTX,  {bits}-bit): "
          f"{gpu_latency_ms(spec, TITAN_RTX, bits):8.2f} ms")
    print(f"GPU latency  (1080 Ti,    {bits}-bit): "
          f"{gpu_latency_ms(spec, GTX_1080TI, bits):8.2f} ms")
    fpga_bits = min(bits, 16)
    try:
        print(f"FPGA latency (ZCU102 recursive, {fpga_bits}-bit): "
              f"{fpga_recursive_latency_ms(spec, ZCU102, fpga_bits):8.2f} ms")
    except UnsupportedNetworkError as exc:
        print(f"FPGA latency (ZCU102 recursive): NA ({exc})")
    report = fpga_pipelined_report(spec, ZC706, fpga_bits)
    print(f"FPGA throughput (ZC706 pipelined, {fpga_bits}-bit): {report.fps:8.1f} fps")
    print(f"  pipeline bottleneck: {report.bottleneck_kind}"
          f"{report.bottleneck_kernel} stage #{report.bottleneck_index} "
          f"({report.stage_us[report.bottleneck_index]:.1f} us, "
          f"{report.allocations[report.bottleneck_index]:.0f} DSPs)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", choices=sorted(MODEL_ZOO), default=None,
                        help="detail view for one network (default: sweep all)")
    parser.add_argument("--bits", type=int, default=32, choices=(8, 16, 32))
    parser.add_argument("--width-mult", type=float, default=1.0)
    args = parser.parse_args()

    if args.model:
        detail(args.model, args.bits, args.width_mult)
    else:
        sweep(sorted(MODEL_ZOO), args.bits, args.width_mult)


if __name__ == "__main__":
    main()
