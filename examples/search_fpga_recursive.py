#!/usr/bin/env python
"""EDD-Net-2 scenario: co-search for a *recursive* FPGA accelerator.

The recursive architecture (CHaiDNN-like, Sec. 4.1) reuses one IP per
candidate operation across all blocks, so:

* the objective is end-to-end latency (Eq. 6);
* resource follows the tanh-sharing rule (Eqs. 9-10) — selecting the same
  op in many blocks is cheap, op diversity is expensive;
* quantisation and parallel factors are shared per op (Sec. 3.2.5).

This example demonstrates the paper's Fig. 4 observation that the recursive
target pushes the search toward few distinct op types: it prints the op
diversity of the derived net and compares against an accuracy-only search.

Usage:
    python examples/search_fpga_recursive.py [--epochs 8] [--dsp-fraction 0.05]
"""

from __future__ import annotations

import argparse
from collections import Counter

from repro.core import EDDConfig, EDDSearcher, train_from_spec
from repro.data import SyntheticTaskConfig, make_synthetic_task
from repro.eval.figures import render_architecture
from repro.nas.space import SearchSpaceConfig


def op_diversity(spec) -> int:
    """Number of distinct candidate op types in the derived network."""
    return len(Counter(spec.metadata["op_labels"]))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--blocks", type=int, default=4)
    parser.add_argument(
        "--dsp-fraction", type=float, default=0.05,
        help="fraction of the ZCU102's 2520 DSPs available (tight budgets "
        "amplify the sharing pressure)",
    )
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    print("== EDD co-search: recursive FPGA accelerator (EDD-Net-2 scenario) ==")
    space = SearchSpaceConfig.reduced(
        num_blocks=args.blocks, num_classes=6, input_size=12
    )
    splits = make_synthetic_task(
        SyntheticTaskConfig(num_classes=6, image_size=12, train_per_class=16,
                            val_per_class=8, test_per_class=8, seed=args.seed)
    )

    config = EDDConfig(
        target="fpga_recursive", epochs=args.epochs, batch_size=12,
        seed=args.seed, arch_start_epoch=1, resource_fraction=args.dsp_fraction,
        beta=2.0, log_every=2,
    )
    searcher = EDDSearcher(space, splits, config)
    result = searcher.search(name="searched-recursive")

    print(render_architecture(result.spec))
    print(f"\nop diversity (distinct candidate types): {op_diversity(result.spec)} "
          f"of {space.num_ops} available")
    print(f"per-block weight bits: {result.spec.metadata['block_bits']}")
    print(f"re-tuned parallel factors (per block's IP): {result.parallel_factors}")

    final = result.history[-1]
    bound = searcher.hw_model.resource_bound
    print(f"\nfinal expected resource: {final.resource:.1f} DSPs "
          f"(budget {bound:.0f})")

    trained = train_from_spec(result.spec, splits, epochs=10, batch_size=12, lr=0.08)
    print(f"retrained top-1 error: {trained.top1_error:.1f}%")

    print("\nEpoch trace (perf/resource under Eq. 6 + Eqs. 9-10):")
    for record in result.history:
        print(f"  epoch {record.epoch}: train={record.train_loss:.3f} "
              f"perf={record.perf_loss:.3f} res={record.resource:.1f} "
              f"theta-perplexity={record.theta_perplexity:.2f}")


if __name__ == "__main__":
    main()
