#!/usr/bin/env python
"""Sec. 4.3 extension: EDD on a dedicated bit-serial accelerator.

Stripes/Loom/Bit-Fusion execute multiplications serially over bit planes, so
latency and energy scale ~proportionally with operand precision.  The paper
sketches the formulation and leaves the experiment as future work; this
example runs it with the multi-objective product loss (latency x energy,
Sec. 3.2.4) and shows the characteristic outcome: aggressive mixed
low-precision, modulated by the accuracy term.

Usage:
    python examples/dedicated_accelerator.py [--epochs 8] [--lanes 64]
"""

from __future__ import annotations

import argparse
from collections import Counter

import numpy as np

from repro.core import EDDConfig, EDDSearcher, train_from_spec
from repro.data import SyntheticTaskConfig, make_synthetic_task
from repro.eval.figures import render_architecture
from repro.hw.accel import BitSerialAccelModel
from repro.hw.registry import quantization_for_target
from repro.nas.space import SearchSpaceConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--blocks", type=int, default=4)
    parser.add_argument("--lanes", type=int, default=64, help="parallel-lane budget")
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    print("== EDD co-search: dedicated bit-serial accelerator (Loom-style) ==")
    space = SearchSpaceConfig.reduced(
        num_blocks=args.blocks, num_classes=6, input_size=12
    )
    splits = make_synthetic_task(
        SyntheticTaskConfig(num_classes=6, image_size=12, train_per_class=16,
                            val_per_class=8, test_per_class=8, seed=args.seed)
    )
    config = EDDConfig(
        target="accel", epochs=args.epochs, batch_size=12, seed=args.seed,
        arch_start_epoch=1, log_every=2,
    )
    hw_model = BitSerialAccelModel(
        space, quantization_for_target("accel"), lanes_budget=args.lanes,
    )
    searcher = EDDSearcher(space, splits, config, hw_model=hw_model)
    result = searcher.search(name="searched-bitserial")

    print(render_architecture(result.spec))
    bits = result.spec.metadata["block_bits"]
    print(f"\nderived per-block weight bits: {bits}")
    print(f"bit histogram: {dict(Counter(bits))}")

    evaluation = hw_model.evaluate(searcher._expected_sample())
    print(f"latency: {evaluation.diagnostics['latency_units']:.3f} units; "
          f"energy: {evaluation.diagnostics['energy_units']:.3f} units; "
          f"lanes: {evaluation.diagnostics['lanes']:.0f} / {args.lanes}")

    trained = train_from_spec(result.spec, splits, epochs=10, batch_size=12, lr=0.08)
    print(f"retrained top-1 error: {trained.top1_error:.1f}%")

    # Precision-scaling law the model implements (Sec. 4.3): cost ~ q_w * q_a.
    print("\nbit-serial scaling check (energy ratio vs precision ratio):")
    from repro.nas.supernet import constant_sample

    quant = quantization_for_target("accel")
    for idx, bit in enumerate(quant.bitwidths):
        sample = constant_sample(space, quant, [0] * space.num_blocks, idx)
        e = hw_model.evaluate(sample).diagnostics["energy_units"]
        print(f"  all-{bit:>2}-bit: energy {e:8.3f} units "
              f"({bit}/{quant.bitwidths[0]} = {bit / quant.bitwidths[0]:.0f}x baseline)")


if __name__ == "__main__":
    main()
