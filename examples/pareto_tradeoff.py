#!/usr/bin/env python
"""Accuracy-vs-hardware trade-off sweep (Pareto analysis).

Sweeps the performance pressure ``alpha_target`` (how loudly the hardware
objective speaks inside Eq. 1) and retrains each searched architecture,
tracing the accuracy/latency curve a hardware-aware NAS is judged by.
Low alpha approximates accuracy-only NAS; high alpha squeezes latency hard.

Usage:
    python examples/pareto_tradeoff.py [--target fpga_pipelined]
                                       [--alphas 0.25 1.0 4.0]
"""

from __future__ import annotations

import argparse

from repro.core import EDDConfig
from repro.data import SyntheticTaskConfig, make_synthetic_task
from repro.eval.pareto import format_tradeoff, pareto_front, tradeoff_sweep
from repro.hw.registry import get_target, target_names
from repro.nas.space import SearchSpaceConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--target", default="fpga_pipelined",
                        choices=target_names())
    parser.add_argument("--alphas", type=float, nargs="+", default=[0.25, 1.0, 4.0])
    parser.add_argument("--epochs", type=int, default=5)
    parser.add_argument("--blocks", type=int, default=3)
    parser.add_argument("--seed", type=int, default=4)
    args = parser.parse_args()

    print(f"== accuracy/performance trade-off sweep ({args.target}) ==")
    space = SearchSpaceConfig.reduced(
        num_blocks=args.blocks, num_classes=6, input_size=12
    )
    splits = make_synthetic_task(
        SyntheticTaskConfig(num_classes=6, image_size=12, train_per_class=16,
                            val_per_class=8, test_per_class=8, seed=args.seed)
    )
    base = EDDConfig(
        target=args.target, epochs=args.epochs, batch_size=12, seed=args.seed,
        arch_start_epoch=1,
        resource_fraction=get_target(args.target).default_resource_fraction,
    )

    points = tradeoff_sweep(
        space, splits, base, alpha_targets=tuple(args.alphas), train_epochs=8,
    )
    print()
    print(format_tradeoff(points))
    front = pareto_front(points)
    print(f"\nPareto-optimal solutions: "
          f"{', '.join(p.spec_name for p in front)}")
    print("(higher alpha should buy hardware performance — possibly at an "
          "accuracy cost; '*' rows are non-dominated)")


if __name__ == "__main__":
    main()
