#!/usr/bin/env python
"""Quickstart: one complete EDD co-search in under a couple of minutes.

Runs the full pipeline of the paper at reduced scale on the synthetic proxy
task:

1. build a single-path supernet over MBConv candidates (Sec. 3.1);
2. co-search architecture + implementation for a GPU latency target
   (Secs. 3.2, 4.2) with bilevel SGD (Sec. 5);
3. derive the argmax architecture and its precision;
4. retrain it from scratch and report accuracy + model-latency.

Usage:
    python examples/quickstart.py [--epochs 6] [--blocks 3] [--seed 0]
"""

from __future__ import annotations

import argparse

from repro.core import EDDConfig, EDDSearcher, train_from_spec
from repro.data import SyntheticTaskConfig, make_synthetic_task
from repro.eval.figures import render_architecture
from repro.hw.analytic import gpu_latency_ms
from repro.hw.device import TITAN_RTX
from repro.nas.space import SearchSpaceConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=6, help="search epochs")
    parser.add_argument("--blocks", type=int, default=3, help="searchable blocks (N)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("== EDD quickstart (GPU latency target) ==")
    space = SearchSpaceConfig.reduced(
        num_blocks=args.blocks, num_classes=6, input_size=12
    )
    print(f"search space: N={space.num_blocks} blocks x M={space.num_ops} ops "
          f"(kernels {space.kernel_sizes}, expansions {space.expansions})")

    splits = make_synthetic_task(
        SyntheticTaskConfig(num_classes=6, image_size=12, train_per_class=16,
                            val_per_class=8, test_per_class=8, seed=args.seed)
    )
    config = EDDConfig(
        target="gpu", epochs=args.epochs, batch_size=12, seed=args.seed,
        arch_start_epoch=1, log_every=1,
    )
    searcher = EDDSearcher(space, splits, config)
    result = searcher.search(name="quickstart-net")

    print(f"\nsearch finished in {result.search_seconds:.1f}s; "
          f"final epoch: train={result.history[-1].train_loss:.3f} "
          f"val={result.history[-1].val_acc_loss:.3f} "
          f"perf={result.history[-1].perf_loss:.3f}")
    print("\nderived architecture:")
    print(render_architecture(result.spec))

    trained = train_from_spec(result.spec, splits, epochs=10, batch_size=12, lr=0.08)
    print(f"\nretrained from scratch: top-1 error {trained.top1_error:.1f}% "
          f"(chance {100 * (1 - 1 / 6):.1f}%)")

    # The searched precision applies when deploying; compare against fp32.
    bits = result.spec.weight_bits or 32
    full_size = space.spec_for_choices(
        [space.candidate_ops()[0]] * space.num_blocks, name="ref"
    )
    print(f"\ndeployment: searched precision = {bits}-bit")
    print(f"model-latency at {bits:>2}-bit: "
          f"{gpu_latency_ms(result.spec, TITAN_RTX, bits):7.3f} ms (Titan RTX model)")
    print(f"model-latency at 32-bit: "
          f"{gpu_latency_ms(result.spec, TITAN_RTX, 32):7.3f} ms")

    # One repro.api batch call retargets the derived network to every
    # registered device model — the paper's retargeting claim in one line.
    from repro import api

    print("\ncross-target estimates (repro.api.estimate):")
    for record in api.estimate(models=[result.spec], bits=[bits]):
        value = "NA" if not record.supported else f"{record.value:8.2f}"
        print(f"  {record.target:16s} {record.device:16s} "
              f"{record.bits:2d}-bit  {record.metric:14s} {value}")


if __name__ == "__main__":
    main()
